// Package sched provides fixed-priority assignment policies for the
// admission control: rate monotonic (Liu & Layland [11]), deadline
// monotonic (Audsley, Burns, Richardson & Wellings [1], cited by the
// paper as the arbitrary-deadline entry point), and Audsley's optimal
// priority assignment (OPA), which finds a feasible priority order
// whenever one exists under the exact response-time test. The paper
// takes priorities as given (RTSJ PriorityParameters); these helpers
// let users of the library derive them.
package sched

import (
	"fmt"
	"sort"

	"repro/internal/analysis"
	"repro/internal/taskset"
)

// RateMonotonic returns a copy of the set with priorities assigned by
// period: the shorter the period, the higher the priority (optimal
// for implicit deadlines, Liu & Layland). Ties break by declaration
// order, earlier = higher.
func RateMonotonic(s *taskset.Set) *taskset.Set {
	return assignBy(s, func(a, b taskset.Task) bool { return a.Period < b.Period })
}

// DeadlineMonotonic returns a copy with priorities assigned by
// relative deadline: the shorter the deadline, the higher the
// priority (optimal for constrained deadlines D ≤ T, Audsley et al.).
func DeadlineMonotonic(s *taskset.Set) *taskset.Set {
	return assignBy(s, func(a, b taskset.Task) bool { return a.Deadline < b.Deadline })
}

// assignBy orders tasks by the given higher-first relation and
// assigns descending integer priorities n..1.
func assignBy(s *taskset.Set, higher func(a, b taskset.Task) bool) *taskset.Set {
	c := s.Clone()
	idx := make([]int, c.Len())
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return higher(c.Tasks[idx[a]], c.Tasks[idx[b]])
	})
	for rank, i := range idx {
		c.Tasks[i].Priority = c.Len() - rank
	}
	return c
}

// Audsley runs Audsley's optimal priority assignment over the exact
// response-time test: it fills priority levels from the lowest up,
// at each level finding some task that is feasible there given all
// unassigned tasks above it. If it succeeds the returned set is
// feasible; if no task fits some level, no fixed-priority assignment
// can make the set feasible (under this test) and an error names the
// level.
func Audsley(s *taskset.Set) (*taskset.Set, error) {
	c := s.Clone()
	n := c.Len()
	assigned := make([]bool, n)
	// Work on a scratch copy whose priorities we rewrite per probe.
	for level := 1; level <= n; level++ {
		placed := false
		for i := 0; i < n && !placed; i++ {
			if assigned[i] {
				continue
			}
			probe := c.Clone()
			// Candidate i gets the current (low) level; every other
			// unassigned task gets a priority above every assigned
			// level; assigned tasks keep their levels.
			hi := n + 1
			for j := 0; j < n; j++ {
				switch {
				case j == i:
					probe.Tasks[j].Priority = level
				case assigned[j]:
					// keep the already-assigned level in c
					probe.Tasks[j].Priority = c.Tasks[j].Priority
				default:
					probe.Tasks[j].Priority = hi
					hi++
				}
			}
			wcrt, err := analysis.WCResponseTime(probe, i, 0)
			if err != nil {
				continue // unbounded at this level: try another task
			}
			if wcrt <= probe.Tasks[i].Deadline {
				c.Tasks[i].Priority = level
				assigned[i] = true
				placed = true
			}
		}
		if !placed {
			return nil, fmt.Errorf("sched: no task is feasible at priority level %d; no fixed-priority assignment exists", level)
		}
	}
	return c, nil
}

// Feasible reports whether the set, with its current priorities,
// passes the exact admission control — a convenience wrapper used by
// assignment comparisons.
func Feasible(s *taskset.Set) bool {
	rep, err := analysis.Feasible(s)
	return err == nil && rep.Feasible
}
