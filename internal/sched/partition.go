package sched

import (
	"fmt"
	"sort"

	"repro/internal/analysis"
	"repro/internal/taskset"
)

// Partitioned multiprocessor assignment: bin-pack tasks onto M cores
// so that every core's subset passes the exact uniprocessor admission
// test (the Eq. 1 load test + response-time computation). Tasks are
// considered in decreasing utilization order — the classic
// first-fit/best-fit decreasing heuristics from the partitioned
// fixed-priority literature. A successful packing is a schedulability
// proof per core; failure does not prove infeasibility (bin packing
// is a heuristic), it only means this heuristic found no partition.

// FirstFitDecreasing assigns each task (highest utilization first,
// ties by declaration order) to the lowest-indexed core whose subset
// stays feasible under the exact test. It returns assignment[i] =
// core of s.Tasks[i], or an error naming the first task that fits no
// core.
func FirstFitDecreasing(s *taskset.Set, cores int) ([]int, error) {
	return packDecreasing(s, cores, firstFit)
}

// BestFitDecreasing assigns each task (highest utilization first,
// ties by declaration order) to the feasible core with the highest
// resulting utilization — packing cores tightly to keep later, larger
// cores free. Ties break toward the lower core index.
func BestFitDecreasing(s *taskset.Set, cores int) ([]int, error) {
	return packDecreasing(s, cores, bestFit)
}

// pickCore chooses among the cores where the candidate task fits;
// bins[c] is the (feasible) subset already on core c. It returns the
// chosen core or -1 if the task fits nowhere.
type pickCore func(bins [][]taskset.Task, t taskset.Task) int

func firstFit(bins [][]taskset.Task, t taskset.Task) int {
	for c := range bins {
		if fits(bins[c], t) {
			return c
		}
	}
	return -1
}

func bestFit(bins [][]taskset.Task, t taskset.Task) int {
	best, bestUtil := -1, -1.0
	for c := range bins {
		if !fits(bins[c], t) {
			continue
		}
		u := t.Utilization()
		for _, other := range bins[c] {
			u += other.Utilization()
		}
		if u > bestUtil {
			best, bestUtil = c, u
		}
	}
	return best
}

// fits reports whether bin ∪ {t} passes the exact admission test.
func fits(bin []taskset.Task, t taskset.Task) bool {
	cand := make([]taskset.Task, 0, len(bin)+1)
	cand = append(cand, bin...)
	cand = append(cand, t)
	sub, err := taskset.New(cand...)
	if err != nil {
		return false
	}
	rep, err := analysis.Feasible(sub)
	return err == nil && rep.Feasible
}

func packDecreasing(s *taskset.Set, cores int, pick pickCore) ([]int, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if cores < 1 {
		return nil, fmt.Errorf("sched: partitioning needs at least 1 core, got %d", cores)
	}
	order := make([]int, s.Len())
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return s.Tasks[order[a]].Utilization() > s.Tasks[order[b]].Utilization()
	})
	bins := make([][]taskset.Task, cores)
	assignment := make([]int, s.Len())
	for _, i := range order {
		t := s.Tasks[i]
		c := pick(bins, t)
		if c < 0 {
			return nil, fmt.Errorf("sched: task %q (utilization %.3f) fits no core of %d; no feasible partition found", t.Name, t.Utilization(), cores)
		}
		bins[c] = append(bins[c], t)
		assignment[i] = c
	}
	return assignment, nil
}
