package sched

import (
	"testing"

	"repro/internal/taskset"
)

// checkPartition validates that assignment respects the exact test on
// every core's subset.
func checkPartition(t *testing.T, s *taskset.Set, assignment []int, cores int) {
	t.Helper()
	if len(assignment) != s.Len() {
		t.Fatalf("assignment length %d, want %d", len(assignment), s.Len())
	}
	bins := make([][]taskset.Task, cores)
	for i, c := range assignment {
		if c < 0 || c >= cores {
			t.Fatalf("task %d assigned to core %d of %d", i, c, cores)
		}
		bins[c] = append(bins[c], s.Tasks[i])
	}
	for c, bin := range bins {
		if len(bin) == 0 {
			continue
		}
		if !Feasible(taskset.MustNew(bin...)) {
			t.Errorf("core %d subset infeasible: %v", c, names(bin))
		}
	}
}

func names(tasks []taskset.Task) []string {
	out := make([]string, len(tasks))
	for i, t := range tasks {
		out[i] = t.Name
	}
	return out
}

// fourHalves needs two cores: four tasks of utilization 0.5 each.
func fourHalves() *taskset.Set {
	return taskset.MustNew(
		withPrio(task("a", 100, 100, 50), 4),
		withPrio(task("b", 100, 100, 50), 3),
		withPrio(task("c", 100, 100, 50), 2),
		withPrio(task("d", 100, 100, 50), 1),
	)
}

func TestFirstFitDecreasingPacks(t *testing.T) {
	s := fourHalves()
	got, err := FirstFitDecreasing(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, s, got, 2)
	// Equal utilizations tie-break by declaration order, so FFD fills
	// core 0 with a+b, core 1 with c+d.
	want := []int{0, 0, 1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FFD assignment %v, want %v", got, want)
		}
	}
}

func TestFirstFitDecreasingFailsWhenOverfull(t *testing.T) {
	s := fourHalves()
	if _, err := FirstFitDecreasing(s, 1); err == nil {
		t.Fatal("four 0.5-utilization tasks packed onto one core")
	}
}

func TestBestFitPrefersFullestFeasibleCore(t *testing.T) {
	// Utilizations 0.6, 0.5, 0.3, 0.2 on two cores. Both heuristics
	// place 0.6→core0, 0.5→core1 (0.6+0.5 > 1 fails the load test),
	// then 0.3→core0 (0.9, feasible for harmonic periods). The final
	// 0.2 task overloads core 0 (1.1), so it lands on core 1 either
	// way: first fit by falling through, best fit because core 1 is
	// the only feasible core left.
	s := taskset.MustNew(
		withPrio(task("u6", 100, 100, 60), 4),
		withPrio(task("u5", 200, 200, 100), 3),
		withPrio(task("u3", 400, 400, 120), 2),
		withPrio(task("u2", 800, 800, 160), 1),
	)
	ffd, err := FirstFitDecreasing(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, s, ffd, 2)
	bfd, err := BestFitDecreasing(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, s, bfd, 2)
	want := []int{0, 1, 0, 1}
	for i := range want {
		if ffd[i] != want[i] {
			t.Fatalf("FFD assignment %v, want %v", ffd, want)
		}
		if bfd[i] != want[i] {
			t.Fatalf("BFD assignment %v, want %v", bfd, want)
		}
	}
}

func TestBestFitDivergesFromFirstFit(t *testing.T) {
	// Cores pre-loaded at 0.3 / 0.5 / 0.1; a 0.4-utilization
	// candidate fits all three. First fit takes the lowest index
	// (core 0); best fit takes the fullest feasible core (core 1,
	// reaching 0.9).
	bins := [][]taskset.Task{
		{task("a", 100, 100, 30)},
		{task("b", 100, 100, 50)},
		{task("c", 100, 100, 10)},
	}
	cand := withPrio(task("x", 100, 100, 40), 9)
	if got := firstFit(bins, cand); got != 0 {
		t.Fatalf("first-fit picked core %d, want 0", got)
	}
	// Best fit: core 1 would reach 0.9 — the fullest feasible core.
	if got := bestFit(bins, cand); got != 1 {
		t.Fatalf("best-fit picked core %d, want 1", got)
	}
}

func TestPartitionRejectsBadCoreCount(t *testing.T) {
	if _, err := FirstFitDecreasing(fourHalves(), 0); err == nil {
		t.Fatal("cores=0 accepted")
	}
}
