// Package detect implements the paper's fault detection and treatment
// mechanisms (Sections 3 and 4). A detector is a periodic timer per
// task — period equal to the task period, offset equal to the task's
// worst-case response time — that checks whether the current job has
// finished; an unfinished job at its WCRT has necessarily overrun its
// cost. Treatments decide what to do with the faulty task: nothing,
// stop it at once, stop it after an equitable allowance, or grant it
// the whole system allowance (redistributing any leftover to later
// faulty tasks).
package detect

import (
	"fmt"

	"repro/internal/allowance"
	"repro/internal/analysis"
	"repro/internal/engine"
	"repro/internal/taskset"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// Treatment selects the paper's §4 fault response.
type Treatment int

// Treatments, in the order of the paper's §6 comparison.
const (
	// NoDetection disables detectors entirely (Figure 3).
	NoDetection Treatment = iota
	// DetectOnly installs detectors but treats nothing (Figure 4).
	DetectOnly
	// Stop stops faulty tasks at their WCRT (Figure 5, §4.1).
	Stop
	// Equitable stops faulty tasks after the equitable allowance
	// (Figure 6, §4.2): detectors fire at the Table 3 shifted WCRTs.
	Equitable
	// SystemAllowance grants the whole system slack to the first
	// faulty task, leftover to later ones (Figure 7, §4.3).
	SystemAllowance
)

// String names the treatment as in the paper's section titles.
func (t Treatment) String() string {
	switch t {
	case NoDetection:
		return "no-detection"
	case DetectOnly:
		return "detect-only"
	case Stop:
		return "stop"
	case Equitable:
		return "equitable-allowance"
	case SystemAllowance:
		return "system-allowance"
	default:
		return fmt.Sprintf("treatment(%d)", int(t))
	}
}

// ParseTreatment maps a treatment name to its constant. It accepts
// the short command-line vocabulary (none, detect, stop, equitable,
// system) and the paper's long forms (no-detection, detect-only,
// stop-equitable, equitable-allowance, system-allowance); the empty
// string means NoDetection. It is the single mapping behind
// sim.ParseTreatment and the verify oracle's scenario bridge.
func ParseTreatment(name string) (Treatment, error) {
	switch name {
	case "", "none", "no-detection":
		return NoDetection, nil
	case "detect", "detect-only":
		return DetectOnly, nil
	case "stop":
		return Stop, nil
	case "equitable", "stop-equitable", "equitable-allowance":
		return Equitable, nil
	case "system", "system-allowance":
		return SystemAllowance, nil
	}
	return 0, fmt.Errorf("detect: unknown treatment %q (want none|detect|stop|equitable|system)", name)
}

// Config parameterizes a Supervisor.
type Config struct {
	// Treatment is the fault response policy.
	Treatment Treatment
	// TimerResolution quantizes detector releases upward, modelling
	// jRate's PeriodicTimer whose releases are only accurate at
	// multiples of 10 ms (paper §6.2). Zero means exact timers.
	TimerResolution vtime.Duration
	// Granularity is the allowance search resolution (0 = 1 ms).
	Granularity vtime.Duration
}

// DefaultTimerResolution reproduces jRate's 10 ms PeriodicTimer.
const DefaultTimerResolution = 10 * vtime.Millisecond

// taskPlan is the per-task detection parameterization derived from
// admission control, plus the per-task runtime statistics. Keeping
// the mutable counters here — one plan lookup per completion instead
// of a map operation per counter — keeps the supervisor off the
// engine's hot path.
type taskPlan struct {
	task taskset.Task
	// wcrt is the nominal worst-case response time.
	wcrt vtime.Duration
	// detectOffset is the (quantized) offset of the detector within
	// each period.
	detectOffset vtime.Duration
	// maxOverrun is the §4.3 single-task bound.
	maxOverrun vtime.Duration

	// faultyQ is the job index flagged by the detector's most recent
	// detection, -1 while no flagged job is outstanding.
	faultyQ int64
	// maxExecuted is the largest CPU time any completed job actually
	// consumed — the §7 cost under-run observation ("if the cost of a
	// task can be underestimated, it is also possible to overestimate
	// it").
	maxExecuted vtime.Duration
	// completedJobs counts completions, so reclamation only trusts
	// tasks with evidence.
	completedJobs int64
}

// Supervisor owns the detectors and treatments for one run. Build it
// with NewSupervisor (which performs the paper's admission control and
// allowance analysis), then Attach it to an engine before Run.
type Supervisor struct {
	cfg   Config
	table *allowance.Table
	plans map[string]*taskPlan
	set   *taskset.Set

	// detections counts FaultDetected events.
	detections int64
}

// NewSupervisor runs admission control on the set and derives every
// detector offset and allowance. It fails if the system is not
// theoretically feasible — the paper's premise is a system accepted by
// admission control that faults at runtime anyway.
func NewSupervisor(s *taskset.Set, cfg Config) (*Supervisor, error) {
	rep, err := analysis.Feasible(s)
	if err != nil {
		return nil, err
	}
	if !rep.Feasible {
		return nil, fmt.Errorf("detect: admission control rejects the system (misses: %v)", rep.Misses)
	}
	tab, err := allowance.Compute(s, cfg.Granularity)
	if err != nil {
		return nil, err
	}
	sup := &Supervisor{
		cfg:   cfg,
		table: tab,
		plans: make(map[string]*taskPlan, s.Len()),
		set:   s.Clone(),
	}
	for i, t := range s.Tasks {
		off := tab.WCRT[i]
		if cfg.Treatment == Equitable {
			// §4.2: tasks are stopped after the new worst case
			// response times which take the allowance into account.
			off = tab.EquitableWCRT[i]
		}
		sup.plans[t.Name] = &taskPlan{
			task:         t,
			wcrt:         tab.WCRT[i],
			detectOffset: off.Ceil(cfg.TimerResolution),
			maxOverrun:   tab.MaxOverrun[i],
			faultyQ:      -1,
		}
	}
	return sup, nil
}

// Table exposes the allowance analysis backing the detectors.
func (s *Supervisor) Table() *allowance.Table { return s.table }

// Detections returns the number of faults detected so far.
func (s *Supervisor) Detections() int64 { return s.detections }

// DetectorOffset returns the quantized detector offset of a task, as
// observable in the paper's Figure 4 (30/60/90 for WCRTs 29/58/87).
func (s *Supervisor) DetectorOffset(task string) (vtime.Duration, bool) {
	p, ok := s.plans[task]
	if !ok {
		return 0, false
	}
	return p.detectOffset, true
}

// Attach installs the detectors on the engine. With NoDetection it
// installs nothing. Call exactly once, before engine.Run.
func (s *Supervisor) Attach(e *engine.Engine) {
	if s.cfg.Treatment == NoDetection {
		return
	}
	for name := range s.plans {
		s.scheduleDetector(e, name, 0)
	}
}

// scheduleDetector arms the detector for job q of the task. The
// detector is periodic (one real-time timer per task, §3: "This
// periodic approach enables us to avoid the creation of an instance
// of a detector for each job"); we model it as a self-rescheduling
// timer, which also supports dynamic task addition (§7). The timer
// state and its callback are allocated once per task and reused at
// every re-arm, so a steady-state detector fire costs no allocation.
func (s *Supervisor) scheduleDetector(e *engine.Engine, name string, q int64) {
	dt := &detectorTimer{s: s, e: e, name: name, tid: e.TaskID(name), q: q}
	dt.fn = func(now vtime.Time) {
		dt.s.fire(dt, now)
		dt.q++
		dt.arm()
	}
	dt.arm()
}

// detectorTimer is one task's periodic detector: a self-rescheduling
// timer whose single closure survives across fires. tid caches the
// engine's task handle so a fire resolves the checked job without a
// name lookup.
type detectorTimer struct {
	s    *Supervisor
	e    *engine.Engine
	name string
	tid  int
	q    int64
	fn   func(now vtime.Time)
}

// arm schedules the check of job q; a removed task (no plan) lets the
// chain end.
func (dt *detectorTimer) arm() {
	p, ok := dt.s.plans[dt.name]
	if !ok {
		return
	}
	at := vtime.Time(p.task.Offset).
		Add(vtime.Duration(dt.q) * p.task.Period).
		Add(p.detectOffset)
	dt.e.ScheduleDetector(at, dt.fn)
}

// fire is the detector body: check the job counter and finished flag
// kept up to date by waitForNextPeriod (§3.1) and start a treatment
// when the job is late.
func (s *Supervisor) fire(dt *detectorTimer, now vtime.Time) {
	e, name, q := dt.e, dt.name, dt.q
	p, ok := s.plans[name]
	if !ok {
		return // task removed since the timer was armed
	}
	e.Record(trace.Event{At: now, Kind: trace.DetectorRelease, Task: name, Job: q})
	j, exists := e.JobAtID(dt.tid, q)
	if !exists || j.Done() {
		// Job finished in time (or was dropped): if it was flagged
		// faulty by an earlier detector and completed since,
		// ObserveCompletion already cleared the flag.
		return
	}
	s.detections++
	p.faultyQ = q
	e.Record(trace.Event{At: now, Kind: trace.FaultDetected, Task: name, Job: q})
	switch s.cfg.Treatment {
	case DetectOnly:
		// Observation only (Figure 4).
	case Stop, Equitable:
		// The detector offset already encodes the allowance for the
		// equitable treatment; in both cases the task is stopped as
		// soon as the (possibly shifted) WCRT passes.
		e.StopJob(name, q, now)
	case SystemAllowance:
		// §4.3 and Figure 7: the faulty task is stopped after a WCRT
		// overrun equal to the maximum free time in the system, i.e.
		// at release + WCRT_i + MaxOverrun_i. The paper's leftover
		// redistribution ("if the first faulty task finishes before
		// having consumed all its allowance, the remainder is
		// allocated to the other faulty tasks" and conversely each
		// task's allowance subtracts "the more priority tasks
		// overrun") is emergent in the time domain: an earlier faulty
		// task that consumed X ms pushes this task's start right by
		// X, so within the fixed window [release+WCRT_i,
		// release+WCRT_i+MaxOverrun_i] exactly MaxOverrun_i − X of
		// own overrun remains. Figure 7 exhibits this: τ1 is stopped
		// at +33, τ2 and τ3 then complete exactly at their shifted
		// bounds 1091 and 1120 with zero residual allowance.
		grant := p.maxOverrun
		e.Record(trace.Event{At: now, Kind: trace.AllowanceGrant, Task: name, Job: q, Arg: int64(grant)})
		stopAt := j.Release.Add(p.wcrt).Add(grant)
		if stopAt < now {
			stopAt = now
		}
		e.Schedule(stopAt, func(at vtime.Time) {
			if jj, ok := e.JobAt(name, q); ok && !jj.Done() {
				e.StopJob(name, q, at)
			}
		})
	}
}

// ObserveCompletion must be wired to the engine's OnFinish and
// OnStopped hooks: it clears the faulty flag once the flagged job
// terminates (the paper's leftover redistribution is emergent in the
// time domain, see the SystemAllowance case in fire) and maintains
// the §7 cost under-run statistics for every completed job.
func (s *Supervisor) ObserveCompletion(e *engine.Engine, j *engine.Job) {
	p, ok := s.plans[j.TaskName()]
	if !ok {
		return
	}
	if !j.Stopped() {
		p.completedJobs++
		if j.Executed > p.maxExecuted {
			p.maxExecuted = j.Executed
		}
	}
	if p.faultyQ == j.Q {
		p.faultyQ = -1
	}
}

// Hooks returns engine hooks pre-wired to the supervisor. Compose
// with any caller hooks before building the engine config.
func (s *Supervisor) Hooks() engine.Hooks {
	return engine.Hooks{
		OnFinish:  s.ObserveCompletion,
		OnStopped: s.ObserveCompletion,
	}
}

// ObservedCost returns the largest CPU consumption seen across the
// task's completed jobs and how many completions back it. A value
// well under the declared cost is the paper's §7 cost under-run: the
// declaration was pessimistic and resources can be reassigned.
func (s *Supervisor) ObservedCost(task string) (vtime.Duration, int64) {
	p, ok := s.plans[task]
	if !ok {
		return 0, 0
	}
	return p.maxExecuted, p.completedJobs
}

// ReclaimTable recomputes the allowance analysis with every declared
// cost replaced by the observed maximum (for tasks with at least
// minJobs completions; others keep their declaration) — the §7
// "reassign resources" step. The reclaimed allowances are at least
// the nominal ones, strictly larger when some task under-runs.
func (s *Supervisor) ReclaimTable(minJobs int64) (*allowance.Table, error) {
	observed := s.set.Clone()
	for i := range observed.Tasks {
		p, ok := s.plans[observed.Tasks[i].Name]
		if ok && p.completedJobs >= minJobs && p.maxExecuted > 0 &&
			p.maxExecuted < observed.Tasks[i].Cost {
			observed.Tasks[i].Cost = p.maxExecuted
		}
	}
	return allowance.Compute(observed, s.cfg.Granularity)
}

// AdmitTask implements dynamic admission (paper §7): it re-runs
// feasibility on the current set plus the candidate; on success it
// recomputes every allowance and detector offset (existing detectors
// pick the new offsets up at their next arming) and adds the task to
// the engine.
func (s *Supervisor) AdmitTask(e *engine.Engine, t taskset.Task) error {
	cand := s.set.Clone()
	cand.Tasks = append(cand.Tasks, t)
	if err := cand.Validate(); err != nil {
		return err
	}
	rep, err := analysis.Feasible(cand)
	if err != nil {
		return err
	}
	if !rep.Feasible {
		return fmt.Errorf("detect: admission control rejects task %s (misses: %v)", t.Name, rep.Misses)
	}
	tab, err := allowance.Compute(cand, s.cfg.Granularity)
	if err != nil {
		return err
	}
	now := e.Now()
	if err := e.AddTask(t, nil, now); err != nil {
		return err
	}
	// The engine interprets the offset relative to now; record the
	// absolute first release so detector arming matches (offsets do
	// not affect the critical-instant feasibility analysis above).
	cand.Tasks[len(cand.Tasks)-1].Offset += vtime.Duration(now)
	s.set = cand
	s.table = tab
	s.rebuildPlans()
	if s.cfg.Treatment != NoDetection {
		s.scheduleDetector(e, t.Name, 0)
	}
	return nil
}

// RemoveTask removes a task from the system and the supervision plan;
// the freed capacity enlarges every allowance (recomputed here).
func (s *Supervisor) RemoveTask(e *engine.Engine, name string) error {
	idx := s.set.IndexByName(name)
	if idx < 0 {
		return fmt.Errorf("detect: unknown task %q", name)
	}
	e.RemoveTask(name, e.Now())
	s.set.Tasks = append(s.set.Tasks[:idx], s.set.Tasks[idx+1:]...)
	delete(s.plans, name)
	tab, err := allowance.Compute(s.set, s.cfg.Granularity)
	if err != nil {
		return err
	}
	s.table = tab
	s.rebuildPlans()
	return nil
}

// rebuildPlans refreshes detector offsets and allowances from the
// current table, preserving unknown tasks untouched.
func (s *Supervisor) rebuildPlans() {
	for i, t := range s.set.Tasks {
		off := s.table.WCRT[i]
		if s.cfg.Treatment == Equitable {
			off = s.table.EquitableWCRT[i]
		}
		p, ok := s.plans[t.Name]
		if !ok {
			p = &taskPlan{faultyQ: -1}
			s.plans[t.Name] = p
		}
		p.task = t
		p.wcrt = s.table.WCRT[i]
		p.detectOffset = off.Ceil(s.cfg.TimerResolution)
		p.maxOverrun = s.table.MaxOverrun[i]
	}
}
