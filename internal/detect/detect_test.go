package detect

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/taskset"
	"repro/internal/trace"
	"repro/internal/vtime"
)

func ms(v int64) vtime.Duration { return vtime.Millis(v) }
func at(v int64) vtime.Time     { return vtime.AtMillis(v) }

func figureSet() *taskset.Set {
	return taskset.MustNew(
		taskset.Task{Name: "tau1", Priority: 20, Period: ms(200), Deadline: ms(70), Cost: ms(29)},
		taskset.Task{Name: "tau2", Priority: 18, Period: ms(250), Deadline: ms(120), Cost: ms(29)},
		taskset.Task{Name: "tau3", Priority: 16, Period: ms(1500), Deadline: ms(120), Cost: ms(29), Offset: ms(1000)},
	)
}

// runFigure builds supervisor+engine for the paper's §6 scenario with
// the given treatment and returns both after the run.
func runFigure(t *testing.T, tr Treatment) (*engine.Engine, *Supervisor, *trace.Log) {
	t.Helper()
	sup, err := NewSupervisor(figureSet(), Config{Treatment: tr, TimerResolution: DefaultTimerResolution})
	if err != nil {
		t.Fatal(err)
	}
	e, err := engine.New(engine.Config{
		Tasks:  figureSet(),
		Faults: fault.Plan{"tau1": fault.OverrunAt{Job: 5, Extra: ms(40)}},
		End:    at(1500),
		Hooks:  sup.Hooks(),
	})
	if err != nil {
		t.Fatal(err)
	}
	sup.Attach(e)
	return e, sup, e.Run()
}

func TestSupervisorRejectsInfeasibleSystem(t *testing.T) {
	s := taskset.MustNew(
		taskset.Task{Name: "a", Priority: 2, Period: ms(10), Deadline: ms(5), Cost: ms(5)},
		taskset.Task{Name: "b", Priority: 1, Period: ms(10), Deadline: ms(6), Cost: ms(5)},
	)
	if _, err := NewSupervisor(s, Config{Treatment: Stop}); err == nil {
		t.Fatal("supervisor must reject a system that fails admission control")
	}
}

// TestDetectorOffsetsQuantized reproduces the paper's §6.2 numbers:
// with jRate's 10 ms PeriodicTimer the detectors of WCRTs 29/58/87 ms
// release at 30/60/90 ms (delays 1/2/3 ms).
func TestDetectorOffsetsQuantized(t *testing.T) {
	sup, err := NewSupervisor(figureSet(), Config{Treatment: Stop, TimerResolution: DefaultTimerResolution})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]vtime.Duration{"tau1": ms(30), "tau2": ms(60), "tau3": ms(90)}
	for task, w := range want {
		got, ok := sup.DetectorOffset(task)
		if !ok || got != w {
			t.Errorf("detector offset of %s = %v, want %v", task, got, w)
		}
	}
	if _, ok := sup.DetectorOffset("nope"); ok {
		t.Error("unknown task must have no detector offset")
	}
}

// TestEquitableDetectorOffsets: under the equitable treatment the
// detectors move to the Table 3 shifted WCRTs (40/80/120), which are
// multiples of 10 already.
func TestEquitableDetectorOffsets(t *testing.T) {
	sup, err := NewSupervisor(figureSet(), Config{Treatment: Equitable, TimerResolution: DefaultTimerResolution})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]vtime.Duration{"tau1": ms(40), "tau2": ms(80), "tau3": ms(120)}
	for task, w := range want {
		if got, _ := sup.DetectorOffset(task); got != w {
			t.Errorf("equitable detector offset of %s = %v, want %v", task, got, w)
		}
	}
}

// TestFigure4DetectOnly: detection without treatment does not alter
// the execution (same completions as Figure 3) but records detector
// releases and the faults.
func TestFigure4DetectOnly(t *testing.T) {
	e, sup, log := runFigure(t, DetectOnly)
	j1, _ := e.JobAt("tau1", 5)
	j3, _ := e.JobAt("tau3", 0)
	if j1.FinishedAt != at(1069) || j3.FinishedAt != at(1127) || !j3.Missed() {
		t.Errorf("detect-only must not change the schedule: tau1 %v, tau3 %v missed=%v",
			j1.FinishedAt, j3.FinishedAt, j3.Missed())
	}
	if sup.Detections() == 0 {
		t.Fatal("the overrun must be detected")
	}
	// τ1's detector for job 5 releases at 1000+30 = 1030 and flags it.
	var sawFault bool
	for _, ev := range log.Events() {
		if ev.Kind == trace.FaultDetected && ev.Task == "tau1" && ev.Job == 5 {
			if ev.At != at(1030) {
				t.Errorf("tau1 fault detected at %v, want 1030ms", ev.At)
			}
			sawFault = true
		}
	}
	if !sawFault {
		t.Fatal("no FaultDetected event for tau1#5")
	}
}

// TestFigure5Stop: "the only task to miss its deadline is task τ1";
// τ1 is stopped at its (quantized) WCRT and the processor is free
// before the expiries of τ2 and τ3.
func TestFigure5Stop(t *testing.T) {
	e, _, _ := runFigure(t, Stop)
	j1, _ := e.JobAt("tau1", 5)
	j2, _ := e.JobAt("tau2", 4)
	j3, _ := e.JobAt("tau3", 0)
	if !j1.Stopped() || j1.FinishedAt != at(1030) {
		t.Errorf("tau1#5 stopped=%v at %v, want stopped at 1030ms", j1.Stopped(), j1.FinishedAt)
	}
	if j2.Missed() || j2.FinishedAt != at(1059) {
		t.Errorf("tau2#4 at %v missed=%v, want 1059ms met", j2.FinishedAt, j2.Missed())
	}
	if j3.Missed() || j3.FinishedAt != at(1088) {
		t.Errorf("tau3#0 at %v missed=%v, want 1088ms met", j3.FinishedAt, j3.Missed())
	}
}

// TestFigure6Equitable: τ1 is stopped after its allowance-shifted
// WCRT (release + 40 ms), later than under Stop; τ2 and τ3 meet
// their deadlines with CPU time left unused.
func TestFigure6Equitable(t *testing.T) {
	e, _, _ := runFigure(t, Equitable)
	j1, _ := e.JobAt("tau1", 5)
	j2, _ := e.JobAt("tau2", 4)
	j3, _ := e.JobAt("tau3", 0)
	if !j1.Stopped() || j1.FinishedAt != at(1040) {
		t.Errorf("tau1#5 stopped=%v at %v, want stopped at 1040ms (WCRT+11 quantized)", j1.Stopped(), j1.FinishedAt)
	}
	if j2.Missed() || j2.FinishedAt != at(1069) {
		t.Errorf("tau2#4 at %v missed=%v, want 1069ms met", j2.FinishedAt, j2.Missed())
	}
	if j3.Missed() || j3.FinishedAt != at(1098) {
		t.Errorf("tau3#0 at %v missed=%v, want 1098ms met", j3.FinishedAt, j3.Missed())
	}
}

// TestFigure7SystemAllowance: τ1 is stopped thirty-three milliseconds
// after its worst case response time (1062 ms); τ2 and τ3 finish just
// before their deadlines (1091 and exactly 1120).
func TestFigure7SystemAllowance(t *testing.T) {
	e, _, log := runFigure(t, SystemAllowance)
	j1, _ := e.JobAt("tau1", 5)
	j2, _ := e.JobAt("tau2", 4)
	j3, _ := e.JobAt("tau3", 0)
	if !j1.Stopped() || j1.FinishedAt != at(1062) {
		t.Errorf("tau1#5 stopped=%v at %v, want stopped at 1062ms (WCRT+33)", j1.Stopped(), j1.FinishedAt)
	}
	if j2.Missed() || j2.Stopped() || j2.FinishedAt != at(1091) {
		t.Errorf("tau2#4 at %v missed=%v stopped=%v, want completed 1091ms", j2.FinishedAt, j2.Missed(), j2.Stopped())
	}
	if j3.Missed() || j3.Stopped() || j3.FinishedAt != at(1120) {
		t.Errorf("tau3#0 at %v missed=%v stopped=%v, want completed exactly at its 1120ms deadline", j3.FinishedAt, j3.Missed(), j3.Stopped())
	}
	// An allowance grant of 33 ms is recorded for τ1.
	var sawGrant bool
	for _, ev := range log.Events() {
		if ev.Kind == trace.AllowanceGrant && ev.Task == "tau1" && ev.Job == 5 {
			if vtime.Duration(ev.Arg) != ms(33) {
				t.Errorf("grant = %v, want 33ms", vtime.Duration(ev.Arg))
			}
			sawGrant = true
		}
	}
	if !sawGrant {
		t.Error("no AllowanceGrant recorded for tau1#5")
	}
}

// TestNoDetectionInstallsNothing: with NoDetection the trace contains
// no detector events at all (Figure 3).
func TestNoDetectionInstallsNothing(t *testing.T) {
	_, sup, log := runFigure(t, NoDetection)
	if sup.Detections() != 0 {
		t.Error("no detections expected")
	}
	n := len(log.Filter(func(ev trace.Event) bool {
		return ev.Kind == trace.DetectorRelease || ev.Kind == trace.FaultDetected
	}))
	if n != 0 {
		t.Errorf("%d detector events recorded under NoDetection", n)
	}
}

// TestFaultFreeRunNoDetections: detectors stay silent when every job
// meets its WCRT.
func TestFaultFreeRunNoDetections(t *testing.T) {
	sup, err := NewSupervisor(figureSet(), Config{Treatment: Stop, TimerResolution: DefaultTimerResolution})
	if err != nil {
		t.Fatal(err)
	}
	e, err := engine.New(engine.Config{Tasks: figureSet(), End: at(3000), Hooks: sup.Hooks()})
	if err != nil {
		t.Fatal(err)
	}
	sup.Attach(e)
	e.Run()
	if sup.Detections() != 0 {
		t.Fatalf("fault-free run produced %d detections", sup.Detections())
	}
}

// TestExactTimersNoFalsePositive: with exact (unquantized) timers a
// job finishing exactly at its WCRT is not flagged — completions are
// observed before detector checks at the same instant.
func TestExactTimersNoFalsePositive(t *testing.T) {
	// Single task, cost = WCRT: every job finishes exactly at the
	// detector's release instant.
	s := taskset.MustNew(
		taskset.Task{Name: "solo", Priority: 1, Period: ms(10), Deadline: ms(10), Cost: ms(5)},
	)
	sup, err := NewSupervisor(s, Config{Treatment: Stop, TimerResolution: 0})
	if err != nil {
		t.Fatal(err)
	}
	if off, _ := sup.DetectorOffset("solo"); off != ms(5) {
		t.Fatalf("exact detector offset = %v, want 5ms", off)
	}
	e, err := engine.New(engine.Config{Tasks: s, End: at(100), Hooks: sup.Hooks()})
	if err != nil {
		t.Fatal(err)
	}
	sup.Attach(e)
	e.Run()
	if sup.Detections() != 0 {
		t.Fatalf("job finishing exactly at WCRT flagged %d times", sup.Detections())
	}
}

// TestRecurringFaultsStopEveryOccurrence: an every-other-job overrun
// under Stop is contained every time; lower tasks never fail.
func TestRecurringFaultsStopEveryOccurrence(t *testing.T) {
	sup, err := NewSupervisor(figureSet(), Config{Treatment: Stop, TimerResolution: DefaultTimerResolution})
	if err != nil {
		t.Fatal(err)
	}
	e, err := engine.New(engine.Config{
		Tasks:  figureSet(),
		Faults: fault.Plan{"tau1": fault.OverrunEvery{First: 1, K: 2, Extra: ms(50)}},
		End:    at(3000),
		Hooks:  sup.Hooks(),
	})
	if err != nil {
		t.Fatal(err)
	}
	sup.Attach(e)
	e.Run()
	if sup.Detections() < 5 {
		t.Fatalf("expected at least 5 detections, got %d", sup.Detections())
	}
	for _, name := range []string{"tau2", "tau3"} {
		for _, j := range e.Jobs(name) {
			if j.Done() && j.Missed() {
				t.Errorf("%s#%d failed despite the stop treatment", name, j.Q)
			}
		}
	}
}

// TestDynamicAdmission (paper §7): a task added at runtime passes
// admission control, gets a detector, and is protected like the rest;
// an inadmissible task is rejected.
func TestDynamicAdmission(t *testing.T) {
	base := taskset.MustNew(
		taskset.Task{Name: "a", Priority: 10, Period: ms(100), Deadline: ms(100), Cost: ms(20)},
	)
	sup, err := NewSupervisor(base, Config{Treatment: Stop, TimerResolution: ms(10)})
	if err != nil {
		t.Fatal(err)
	}
	e, err := engine.New(engine.Config{
		Tasks:  base,
		Faults: fault.Plan{"b": fault.OverrunEvery{First: 0, K: 1, Extra: ms(100)}},
		End:    at(2000),
		Hooks:  sup.Hooks(),
	})
	if err != nil {
		t.Fatal(err)
	}
	sup.Attach(e)
	e.Schedule(at(250), func(now vtime.Time) {
		// Admissible: C=30, T=200 at priority 5 → WCRT = 30+2*20=70.
		if err := sup.AdmitTask(e, taskset.Task{Name: "b", Priority: 5, Period: ms(200), Deadline: ms(200), Cost: ms(30)}); err != nil {
			t.Errorf("AdmitTask(b): %v", err)
		}
		// Inadmissible: would need 150ms every 100ms alongside a.
		if err := sup.AdmitTask(e, taskset.Task{Name: "c", Priority: 4, Period: ms(100), Deadline: ms(100), Cost: ms(90)}); err == nil {
			t.Error("AdmitTask(c) must be rejected by admission control")
		}
	})
	e.Run()
	// Every faulty job of b must have been stopped; a never fails.
	var stopped int
	for _, j := range e.Jobs("b") {
		if j.Stopped() {
			stopped++
		}
	}
	if stopped == 0 {
		t.Fatal("dynamically added faulty task was never stopped by its detector")
	}
	for _, j := range e.Jobs("a") {
		if j.Done() && j.Missed() {
			t.Errorf("a#%d failed despite detectors", j.Q)
		}
	}
}

// TestRemoveTaskFreesAllowance: removing a task recomputes a larger
// (or equal) equitable allowance.
func TestRemoveTaskFreesAllowance(t *testing.T) {
	sup, err := NewSupervisor(figureSet(), Config{Treatment: Stop, TimerResolution: ms(10)})
	if err != nil {
		t.Fatal(err)
	}
	before := sup.Table().Equitable
	e, err := engine.New(engine.Config{Tasks: figureSet(), End: at(5000), Hooks: sup.Hooks()})
	if err != nil {
		t.Fatal(err)
	}
	sup.Attach(e)
	e.Schedule(at(100), func(now vtime.Time) {
		if err := sup.RemoveTask(e, "tau3"); err != nil {
			t.Errorf("RemoveTask: %v", err)
		}
		if err := sup.RemoveTask(e, "ghost"); err == nil {
			t.Error("removing an unknown task must fail")
		}
	})
	e.Run()
	after := sup.Table().Equitable
	if after < before {
		t.Errorf("allowance shrank after removing a task: %v -> %v", before, after)
	}
	if after <= before {
		// With τ3 (the binding constraint, D=120 at lowest priority)
		// gone, the allowance must strictly grow: R2 = 58+2A ≤ 120.
		t.Errorf("removing the binding task must grow the allowance: %v -> %v", before, after)
	}
}

func TestTreatmentStrings(t *testing.T) {
	want := map[Treatment]string{
		NoDetection:     "no-detection",
		DetectOnly:      "detect-only",
		Stop:            "stop",
		Equitable:       "equitable-allowance",
		SystemAllowance: "system-allowance",
	}
	for tr, w := range want {
		if tr.String() != w {
			t.Errorf("%d.String() = %q, want %q", int(tr), tr.String(), w)
		}
	}
}

// TestCostUnderrunObservation (paper §7): a task whose jobs complete
// well under the declared cost is observed, and the reclaimed
// allowance grows accordingly.
func TestCostUnderrunObservation(t *testing.T) {
	sup, err := NewSupervisor(figureSet(), Config{Treatment: DetectOnly, TimerResolution: ms(10)})
	if err != nil {
		t.Fatal(err)
	}
	e, err := engine.New(engine.Config{
		Tasks: figureSet(),
		// tau1's jobs actually take 9ms, not the declared 29.
		Faults: fault.Plan{"tau1": fault.UnderrunEvery{Early: ms(20)}},
		End:    at(3000),
		Hooks:  sup.Hooks(),
	})
	if err != nil {
		t.Fatal(err)
	}
	sup.Attach(e)
	e.Run()
	got, n := sup.ObservedCost("tau1")
	if n == 0 || got != ms(9) {
		t.Fatalf("observed tau1 cost = %v over %d jobs, want 9ms", got, n)
	}
	// tau2/tau3 run at their declared 29ms.
	if got, _ := sup.ObservedCost("tau2"); got != ms(29) {
		t.Fatalf("observed tau2 cost = %v, want 29ms", got)
	}
	// Reclaiming with tau1 at 9ms: equitable allowance from
	// 3·(29+A) ≤ 120 becomes (9+A) + ... recompute: tau3's bound is
	// R3 = (9+A)+(29+A)+(29+A) ≤ 120 → A ≤ 17.67 → 17ms.
	tab, err := sup.ReclaimTable(3)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Equitable <= sup.Table().Equitable {
		t.Fatalf("reclaimed allowance %v must exceed nominal %v", tab.Equitable, sup.Table().Equitable)
	}
	if tab.Equitable != ms(17) {
		t.Fatalf("reclaimed allowance = %v, want 17ms", tab.Equitable)
	}
	// Demanding more evidence than exists keeps the declaration.
	tab, err = sup.ReclaimTable(1 << 30)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Equitable != sup.Table().Equitable {
		t.Fatalf("insufficient evidence must keep the nominal allowance, got %v", tab.Equitable)
	}
}

// TestObservedCostIgnoresStoppedJobs: a stopped job's truncated
// execution must not masquerade as an observed (smaller) cost.
func TestObservedCostIgnoresStoppedJobs(t *testing.T) {
	_, sup, _ := runFigure(t, Stop)
	got, n := sup.ObservedCost("tau1")
	// Jobs 0-4 and 6, 7 complete at 29ms; the stopped job 5 (ran
	// ~30ms before the stop) is excluded.
	if got != ms(29) {
		t.Fatalf("observed tau1 cost = %v over %d completions, want 29ms", got, n)
	}
}
