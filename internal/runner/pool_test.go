package runner

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolQueueFull pins the load-shedding path: with one worker
// parked on a job and the one queue slot taken, TrySubmit fails with
// ErrQueueFull instead of blocking, and succeeds again once the
// backlog drains.
func TestPoolQueueFull(t *testing.T) {
	p := NewPool(Options{Parallelism: 1, QueueDepth: 1})
	defer p.Close()

	block := make(chan struct{})
	started := make(chan struct{})
	if err := p.TrySubmit(func(context.Context) { close(started); <-block }); err != nil {
		t.Fatalf("first TrySubmit: %v", err)
	}
	<-started // the worker owns job 1; the queue is empty again

	ran := make(chan struct{})
	if err := p.TrySubmit(func(context.Context) { close(ran) }); err != nil {
		t.Fatalf("TrySubmit into empty queue: %v", err)
	}
	if p.QueueDepth() != 1 {
		t.Fatalf("QueueDepth = %d, want 1", p.QueueDepth())
	}
	if p.InFlight() != 1 {
		t.Fatalf("InFlight = %d, want 1", p.InFlight())
	}

	// Queue full: shedding, not blocking.
	err := p.TrySubmit(func(context.Context) {})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("TrySubmit with full queue = %v, want ErrQueueFull", err)
	}

	close(block)
	select {
	case <-ran:
	case <-time.After(5 * time.Second):
		t.Fatal("queued job never ran after the worker unblocked")
	}

	// A freed slot admits again.
	done := make(chan struct{})
	if err := p.TrySubmit(func(context.Context) { close(done) }); err != nil {
		t.Fatalf("TrySubmit after drain: %v", err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("post-drain job never ran")
	}
}

// TestPoolCloseDrainsAndRejects pins Close semantics: accepted jobs
// run to completion (with a cancelled context), later submissions get
// ErrPoolClosed, and Close is idempotent.
func TestPoolCloseDrainsAndRejects(t *testing.T) {
	p := NewPool(Options{Parallelism: 2, QueueDepth: 8})
	var ran atomic.Int64
	var cancelled atomic.Int64
	for i := 0; i < 8; i++ {
		if err := p.TrySubmit(func(ctx context.Context) {
			ran.Add(1)
			if ctx.Err() != nil {
				cancelled.Add(1)
			}
		}); err != nil {
			t.Fatalf("TrySubmit %d: %v", i, err)
		}
	}
	p.Close()
	if got := ran.Load(); got != 8 {
		t.Errorf("ran %d accepted jobs, want all 8", got)
	}
	if err := p.TrySubmit(func(context.Context) {}); !errors.Is(err, ErrPoolClosed) {
		t.Errorf("TrySubmit after Close = %v, want ErrPoolClosed", err)
	}
	p.Close() // idempotent
	_ = cancelled.Load()
}

// TestPoolConcurrentSubmitters hammers TrySubmit from many goroutines
// against a tiny pool: every accepted job runs exactly once, rejected
// submissions are all ErrQueueFull, and nothing deadlocks. (Run under
// -race this doubles as the admission-path data-race check.)
func TestPoolConcurrentSubmitters(t *testing.T) {
	p := NewPool(Options{Parallelism: 2, QueueDepth: 2})
	defer p.Close()

	const attempts = 200
	var accepted, ran, rejected atomic.Int64
	done := make(chan struct{}, attempts)
	for i := 0; i < attempts; i++ {
		go func() {
			err := p.TrySubmit(func(context.Context) { ran.Add(1) })
			switch {
			case err == nil:
				accepted.Add(1)
			case errors.Is(err, ErrQueueFull):
				rejected.Add(1)
			default:
				t.Errorf("unexpected TrySubmit error: %v", err)
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < attempts; i++ {
		<-done
	}
	deadline := time.Now().Add(5 * time.Second)
	for ran.Load() != accepted.Load() {
		if time.Now().After(deadline) {
			t.Fatalf("ran %d of %d accepted jobs", ran.Load(), accepted.Load())
		}
		time.Sleep(time.Millisecond)
	}
	if accepted.Load()+rejected.Load() != attempts {
		t.Fatalf("accepted %d + rejected %d != %d attempts", accepted.Load(), rejected.Load(), attempts)
	}
}
