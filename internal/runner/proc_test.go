package runner

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"testing"
)

// TestMain turns the test binary into a MapProc worker when the
// helper-process variable is set (the classic os/exec self-exec test
// pattern): the worker doubles the integer job, errors on negative
// ones, and — when RUNNER_CRASH_AFTER is set — exits mid-stream after
// serving that many jobs, simulating a worker death.
func TestMain(m *testing.M) {
	if os.Getenv("RUNNER_HELPER_PROCESS") == "" {
		os.Exit(m.Run())
	}
	crashAfter := -1
	if s := os.Getenv("RUNNER_CRASH_AFTER"); s != "" {
		crashAfter, _ = strconv.Atoi(s)
	}
	served := 0
	err := ServeProc(os.Stdin, os.Stdout, func(job json.RawMessage) (json.RawMessage, error) {
		if crashAfter >= 0 && served >= crashAfter {
			os.Exit(3) // died with the job in flight
		}
		served++
		var n int
		if err := json.Unmarshal(job, &n); err != nil {
			return nil, err
		}
		if n < 0 {
			return nil, fmt.Errorf("negative job %d", n)
		}
		return json.Marshal(2 * n)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Exit(0)
}

// helperCommand re-executes this test binary as a worker.
func helperCommand(extraEnv ...string) func() *exec.Cmd {
	return func() *exec.Cmd {
		cmd := exec.Command(os.Args[0])
		cmd.Env = append(os.Environ(), "RUNNER_HELPER_PROCESS=1")
		cmd.Env = append(cmd.Env, extraEnv...)
		cmd.Stderr = os.Stderr
		return cmd
	}
}

// intJobs encodes 0..n-1 as job frames.
func intJobs(n int) []json.RawMessage {
	jobs := make([]json.RawMessage, n)
	for i := range jobs {
		jobs[i], _ = json.Marshal(i)
	}
	return jobs
}

// wantDoubled asserts results arrive complete and in input order.
func wantDoubled(t *testing.T, results []json.RawMessage, n int) {
	t.Helper()
	if len(results) != n {
		t.Fatalf("got %d results, want %d", len(results), n)
	}
	for i, raw := range results {
		var v int
		if err := json.Unmarshal(raw, &v); err != nil {
			t.Fatalf("result %d: %v", i, err)
		}
		if v != 2*i {
			t.Errorf("result %d = %d, want %d", i, v, 2*i)
		}
	}
}

// TestMapProcOrdered: results come back in input order across several
// workers, each job answered exactly once.
func TestMapProcOrdered(t *testing.T) {
	const n = 20
	var last int
	results, err := MapProc(context.Background(), ProcOptions{
		Workers: 3,
		Command: helperCommand(),
		Progress: func(done, total int) {
			if done <= last || total != n {
				t.Errorf("progress regressed: done=%d after %d (total %d)", done, last, total)
			}
			last = done
		},
	}, intJobs(n))
	if err != nil {
		t.Fatal(err)
	}
	wantDoubled(t, results, n)
	if last != n {
		t.Errorf("final progress %d, want %d", last, n)
	}
}

// TestMapProcSingleWorker: the degenerate pool still drains everything.
func TestMapProcSingleWorker(t *testing.T) {
	const n = 5
	results, err := MapProc(context.Background(), ProcOptions{Command: helperCommand()}, intJobs(n))
	if err != nil {
		t.Fatal(err)
	}
	wantDoubled(t, results, n)
}

// TestMapProcWorkerDeath: a worker that exits mid-stream loses only
// the in-flight job, which a respawned worker then serves — the sweep
// completes with every result intact.
func TestMapProcWorkerDeath(t *testing.T) {
	const n = 12
	results, err := MapProc(context.Background(), ProcOptions{
		Workers: 2,
		Command: helperCommand("RUNNER_CRASH_AFTER=3"),
	}, intJobs(n))
	if err != nil {
		t.Fatal(err)
	}
	wantDoubled(t, results, n)
}

// TestMapProcPersistentDeath: a worker that dies before serving
// anything exhausts the retry budget and the job's loss is reported,
// not hung.
func TestMapProcPersistentDeath(t *testing.T) {
	_, err := MapProc(context.Background(), ProcOptions{
		Workers:    2,
		MaxRetries: 1,
		Command:    helperCommand("RUNNER_CRASH_AFTER=0"),
	}, intJobs(4))
	if err == nil {
		t.Fatal("sweep with always-crashing workers succeeded")
	}
	if !strings.Contains(err.Error(), "worker death") {
		t.Errorf("error %v does not mention worker death", err)
	}
}

// TestMapProcJobError: a worker-reported job error fails the sweep
// with the job's index and message, without retrying (the job is
// deterministic).
func TestMapProcJobError(t *testing.T) {
	jobs := intJobs(4)
	jobs[2], _ = json.Marshal(-7)
	_, err := MapProc(context.Background(), ProcOptions{Workers: 2, Command: helperCommand()}, jobs)
	if err == nil {
		t.Fatal("sweep with a failing job succeeded")
	}
	var jerr *JobError
	if !asJobError(err, &jerr) || jerr.Index != 2 {
		t.Fatalf("error %v does not identify job 2", err)
	}
	if !strings.Contains(err.Error(), "negative job -7") {
		t.Errorf("error %v lost the worker's message", err)
	}
}

// TestMapProcCancel: cancelling the context stops the sweep promptly.
func TestMapProcCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := MapProc(ctx, ProcOptions{Workers: 2, Command: helperCommand()}, intJobs(50)); err == nil {
		t.Fatal("cancelled sweep succeeded")
	}
}

// TestMapProcEmpty: no jobs, no processes.
func TestMapProcEmpty(t *testing.T) {
	results, err := MapProc(context.Background(), ProcOptions{Command: helperCommand()}, nil)
	if err != nil || len(results) != 0 {
		t.Fatalf("empty sweep: %v, %d results", err, len(results))
	}
}

// asJobError unwraps through errors.Join to the first JobError.
func asJobError(err error, target **JobError) bool {
	type unwrapper interface{ Unwrap() []error }
	if je, ok := err.(*JobError); ok {
		*target = je
		return true
	}
	if multi, ok := err.(unwrapper); ok {
		for _, e := range multi.Unwrap() {
			if asJobError(e, target) {
				return true
			}
		}
	}
	return false
}
