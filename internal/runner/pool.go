package runner

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// ErrQueueFull is returned by Pool.TrySubmit when the bounded accept
// queue has no free slot — the signal a caller (cmd/rtserved) turns
// into load shedding (HTTP 429) instead of blocking or growing an
// unbounded goroutine pile.
var ErrQueueFull = errors.New("runner: queue full")

// ErrPoolClosed is returned by Pool.TrySubmit after Close.
var ErrPoolClosed = errors.New("runner: pool closed")

// Pool is the long-running sibling of Map: a fixed set of workers
// draining a bounded queue of independently submitted jobs, built for
// servers that accept work continuously rather than mapping one batch.
// The same Options vocabulary applies (Parallelism, QueueDepth;
// Progress is ignored — a server observes per-job completion itself).
// Admission is explicitly non-blocking: TrySubmit either owns a queue
// slot or fails with ErrQueueFull, and QueueDepth/InFlight expose the
// backlog so callers can shed load before it builds.
type Pool struct {
	queue    chan func(context.Context)
	ctx      context.Context
	cancel   context.CancelFunc
	wg       sync.WaitGroup
	inFlight atomic.Int64

	mu     sync.Mutex
	closed bool
}

// NewPool starts the workers. The pool's context is passed to every
// job; Close cancels it.
func NewPool(opt Options) *Pool {
	workers := opt.workers()
	ctx, cancel := context.WithCancel(context.Background())
	p := &Pool{
		queue:  make(chan func(context.Context), opt.queue(workers)),
		ctx:    ctx,
		cancel: cancel,
	}
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer p.wg.Done()
			for fn := range p.queue {
				p.inFlight.Add(1)
				fn(ctx)
				p.inFlight.Add(-1)
			}
		}()
	}
	return p
}

// TrySubmit enqueues fn without blocking. It returns ErrQueueFull
// when every queue slot is taken (the caller should shed the work and
// retry later) and ErrPoolClosed after Close. A nil error means a
// worker will run fn(ctx) exactly once.
func (p *Pool) TrySubmit(fn func(ctx context.Context)) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrPoolClosed
	}
	select {
	case p.queue <- fn:
		return nil
	default:
		return ErrQueueFull
	}
}

// QueueDepth is the number of accepted jobs not yet picked up by a
// worker. Instantaneous — a metrics/introspection value, not a
// synchronization primitive.
func (p *Pool) QueueDepth() int { return len(p.queue) }

// QueueCap is the accept-queue bound.
func (p *Pool) QueueCap() int { return cap(p.queue) }

// InFlight is the number of jobs currently executing on workers.
// Instantaneous, like QueueDepth.
func (p *Pool) InFlight() int { return int(p.inFlight.Load()) }

// Close cancels the pool context, rejects further submissions, and
// waits for the workers to drain the queue. Queued jobs still run
// (with the cancelled context, so context-aware jobs exit fast).
// Close is idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		p.cancel()
		close(p.queue)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
