package runner

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os/exec"
	"sort"
	"sync"
)

// Process-level execution: MapProc is Map with subprocesses instead of
// goroutines — the parent fans jobs across N worker processes over a
// JSON-lines stdin/stdout protocol, and a worker dying mid-job gets
// its job re-dispatched to a fresh process. It is the substrate of the
// process-sharded sweeps (sim.ShardedSweep): each worker carries its
// own address space, so a long-horizon shard's memory dies with it,
// and a crash loses one job, not the sweep.
//
// Protocol, one JSON object per line:
//
//	parent → worker:  {"id": 3, "job": <raw JSON>}
//	worker → parent:  {"id": 3, "result": <raw JSON>}
//	               or {"id": 3, "error": "message"}
//
// One job is in flight per worker at a time; a worker answering an id
// it was not asked is a protocol error. Closing the worker's stdin
// tells it to exit (ServeProc returns on EOF).

// ProcOptions tunes a MapProc call.
type ProcOptions struct {
	// Workers is the subprocess count. <= 0 means 1: unlike goroutine
	// parallelism there is no safe hardware-derived default — every
	// worker is a full process.
	Workers int
	// Command builds the exec.Cmd for one worker (argv only — MapProc
	// wires the pipes). Typically the current binary re-executing
	// itself in a serve mode gated by an environment variable.
	Command func() *exec.Cmd
	// MaxRetries bounds how many times one job is re-dispatched after
	// worker deaths before the sweep fails (<= 0 means 2).
	MaxRetries int
	// Progress, as in Options: serialized, strictly increasing done
	// counts.
	Progress func(done, total int)
}

func (o ProcOptions) workers(total int) int {
	w := o.Workers
	if w <= 0 {
		w = 1
	}
	if w > total {
		w = total
	}
	return w
}

func (o ProcOptions) retries() int {
	if o.MaxRetries <= 0 {
		return 2
	}
	return o.MaxRetries
}

// procRequest and procReply are the wire frames.
type procRequest struct {
	ID  int             `json:"id"`
	Job json.RawMessage `json:"job"`
}

type procReply struct {
	ID     int             `json:"id"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// MapProc runs every job through a pool of worker subprocesses and
// returns the raw results in input order. A job whose worker replies
// {"error": ...} fails the sweep (the job is deterministic — retrying
// it would fail again); a job whose worker *dies* is re-dispatched to
// a fresh worker up to MaxRetries times, since process death is an
// environmental fault, not a property of the job.
func MapProc(ctx context.Context, opt ProcOptions, jobs []json.RawMessage) ([]json.RawMessage, error) {
	total := len(jobs)
	if total == 0 {
		return []json.RawMessage{}, nil
	}
	if opt.Command == nil {
		return nil, fmt.Errorf("runner: MapProc needs a Command")
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	queue := make(chan procItem, total) // re-dispatch must never block a worker goroutine
	for i := range jobs {
		queue <- procItem{index: i}
	}

	results := make([]json.RawMessage, total)
	var (
		mu      sync.Mutex
		errs    []*JobError
		done    int
		pending = total
	)
	fail := func(i int, err error) {
		mu.Lock()
		errs = append(errs, &JobError{Index: i, Err: err})
		mu.Unlock()
		cancel()
	}
	complete := func(i int, res json.RawMessage) {
		mu.Lock()
		results[i] = res
		done++
		pending--
		if opt.Progress != nil {
			opt.Progress(done, total)
		}
		drained := pending == 0
		mu.Unlock()
		if drained {
			cancel() // all jobs answered: release the workers' queue reads
		}
	}
	requeue := func(item procItem, cause error) {
		if item.retries >= opt.retries() {
			fail(item.index, fmt.Errorf("job lost to %d worker death(s), last: %w", item.retries+1, cause))
			return
		}
		item.retries++
		queue <- item
	}

	workers := opt.workers(total)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			// Each iteration of this loop is one worker process
			// lifetime; the loop respawns after a death as long as
			// jobs remain.
			for ctx.Err() == nil {
				if err := runProcWorker(ctx, opt, jobs, queue, complete, fail, requeue); err != nil {
					fail(-1, err)
					return
				}
			}
		}()
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if len(errs) > 0 {
		sort.Slice(errs, func(a, b int) bool { return errs[a].Index < errs[b].Index })
		joined := make([]error, len(errs))
		for i, e := range errs {
			joined[i] = e
		}
		return nil, errors.Join(joined...)
	}
	if done != total {
		return nil, ctx.Err()
	}
	return results, nil
}

// procItem is one queued job dispatch with its death-retry count.
type procItem struct {
	index   int
	retries int
}

// runProcWorker spawns one worker process and feeds it jobs until the
// queue drains, the context cancels, or the process dies. A death
// with a job in flight re-queues that job and returns nil (the caller
// respawns); an unspawnable or protocol-breaking worker returns an
// error (retrying would loop forever).
func runProcWorker(ctx context.Context, opt ProcOptions, jobs []json.RawMessage,
	queue chan procItem,
	complete func(int, json.RawMessage), fail func(int, error),
	requeue func(procItem, error),
) error {
	cmd := opt.Command()
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return fmt.Errorf("runner: worker stdin: %w", err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return fmt.Errorf("runner: worker stdout: %w", err)
	}
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("runner: spawning worker: %w", err)
	}
	// On cancellation the worker exits itself on stdin EOF; kill guards
	// against a wedged one.
	stop := context.AfterFunc(ctx, func() { _ = cmd.Process.Kill() })
	defer stop()
	defer func() {
		_ = stdin.Close()
		_ = cmd.Wait()
	}()

	enc := json.NewEncoder(stdin)
	dec := json.NewDecoder(bufio.NewReader(stdout))
	for {
		var item procItem
		select {
		case item = <-queue:
		case <-ctx.Done():
			return nil
		}
		if err := enc.Encode(procRequest{ID: item.index, Job: jobs[item.index]}); err != nil {
			if ctx.Err() != nil {
				return nil // the kill was ours, not a worker fault
			}
			requeue(item, fmt.Errorf("writing job: %w", err))
			return nil // pipe broke: the process is dead or dying
		}
		var reply procReply
		if err := dec.Decode(&reply); err != nil {
			if ctx.Err() != nil {
				return nil
			}
			requeue(item, fmt.Errorf("reading reply: %w", err))
			return nil
		}
		if reply.ID != item.index {
			fail(item.index, fmt.Errorf("worker answered job %d, asked %d", reply.ID, item.index))
			return nil
		}
		if reply.Error != "" {
			fail(item.index, errors.New(reply.Error))
			continue
		}
		complete(item.index, reply.Result)
	}
}

// ServeProc is the worker side of MapProc: it reads job frames from r,
// applies fn, and writes reply frames to w until EOF. A job error
// becomes an error reply, not a crash — the parent decides. It is
// meant to be called from a main() gated by an environment variable,
// with os.Stdin/os.Stdout.
func ServeProc(r io.Reader, w io.Writer, fn func(job json.RawMessage) (json.RawMessage, error)) error {
	dec := json.NewDecoder(bufio.NewReader(r))
	enc := json.NewEncoder(w)
	for {
		var req procRequest
		if err := dec.Decode(&req); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("runner: worker decoding job: %w", err)
		}
		reply := procReply{ID: req.ID}
		if res, err := fn(req.Job); err != nil {
			reply.Error = err.Error()
		} else {
			reply.Result = res
		}
		if err := enc.Encode(reply); err != nil {
			return fmt.Errorf("runner: worker writing reply: %w", err)
		}
	}
}
