package runner

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestOrderingDeterminism: results come back in input order no matter
// how the scheduler interleaves the workers, and repeated parallel
// runs agree with the serial run element-for-element.
func TestOrderingDeterminism(t *testing.T) {
	jobs := make([]int, 200)
	for i := range jobs {
		jobs[i] = i
	}
	square := func(_ context.Context, _ int, v int) (int, error) {
		if v%7 == 0 {
			time.Sleep(time.Millisecond) // jitter the completion order
		}
		return v * v, nil
	}
	serial, err := Map(context.Background(), Options{Parallelism: 1}, jobs, square)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 5; trial++ {
		par, err := Map(context.Background(), Options{Parallelism: 8}, jobs, square)
		if err != nil {
			t.Fatal(err)
		}
		if len(par) != len(serial) {
			t.Fatalf("trial %d: %d results, want %d", trial, len(par), len(serial))
		}
		for i := range par {
			if par[i] != serial[i] {
				t.Fatalf("trial %d: result[%d] = %d, serial %d", trial, i, par[i], serial[i])
			}
		}
	}
}

// TestContextCancellationMidSweep: cancelling while jobs are in flight
// stops submission and surfaces context.Canceled, without running the
// whole input.
func TestContextCancellationMidSweep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	jobs := make([]int, 1000)
	_, err := Map(ctx, Options{Parallelism: 4}, jobs, func(ctx context.Context, i int, _ int) (int, error) {
		if started.Add(1) == 10 {
			cancel()
		}
		select {
		case <-ctx.Done():
		case <-time.After(time.Millisecond):
		}
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := started.Load(); n >= 1000 {
		t.Fatalf("all %d jobs ran despite cancellation", n)
	}
}

// TestSerialPathHonoursContext: the workers==1 fast path must also
// observe cancellation between jobs.
func TestSerialPathHonoursContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ran := 0
	_, err := Map(ctx, Options{Parallelism: 1}, make([]int, 100), func(context.Context, int, int) (int, error) {
		ran++
		if ran == 3 {
			cancel()
		}
		return 0, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran != 3 {
		t.Fatalf("ran %d jobs after cancel, want 3", ran)
	}
}

// TestErrorPropagation: one failing job fails the whole Map, carries
// its input index, and cancels the jobs not yet started.
func TestErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	for _, par := range []int{1, 6} {
		ran.Store(0)
		res, err := Map(context.Background(), Options{Parallelism: par}, make([]int, 500), func(_ context.Context, i int, _ int) (int, error) {
			ran.Add(1)
			if i == 17 {
				return 0, fmt.Errorf("point-17 exploded: %w", boom)
			}
			return i, nil
		})
		if res != nil {
			t.Fatalf("parallelism %d: results must be nil on error", par)
		}
		if !errors.Is(err, boom) {
			t.Fatalf("parallelism %d: err = %v, want wrapped boom", par, err)
		}
		var je *JobError
		if !errors.As(err, &je) || je.Index != 17 {
			t.Fatalf("parallelism %d: want JobError{Index:17}, got %v", par, err)
		}
		if !containsStr(err.Error(), "job 17:") {
			t.Fatalf("parallelism %d: message %q must name the failing index", par, err)
		}
		if n := ran.Load(); n >= 500 {
			t.Fatalf("parallelism %d: all %d jobs ran despite failure", par, n)
		}
	}
}

// TestErrorAggregation: multiple failures are all reported, in input
// order, via errors.Join semantics.
func TestErrorAggregation(t *testing.T) {
	// A barrier holds every job until all four are in flight, so the
	// error-triggered cancel cannot stop either failing job from
	// running: both errors must appear in the aggregate.
	var arrived sync.WaitGroup
	arrived.Add(4)
	_, err := Map(context.Background(), Options{Parallelism: 4, QueueDepth: 4}, []int{0, 1, 2, 3}, func(_ context.Context, i int, _ int) (int, error) {
		arrived.Done()
		arrived.Wait()
		if i%2 == 1 {
			return 0, fmt.Errorf("fail-%d", i)
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("want an error")
	}
	msg := err.Error()
	for _, want := range []string{"fail-1", "fail-3"} {
		if !errorsContains(msg, want) {
			t.Errorf("aggregate %q missing %q", msg, want)
		}
	}
}

func errorsContains(haystack, needle string) bool {
	return len(haystack) >= len(needle) && (haystack == needle || containsStr(haystack, needle))
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestProgressMonotonic: the callback sees every completion exactly
// once, with strictly increasing done counts ending at total.
func TestProgressMonotonic(t *testing.T) {
	for _, par := range []int{1, 5} {
		var mu sync.Mutex
		var seen []int
		_, err := Map(context.Background(), Options{
			Parallelism: par,
			Progress: func(done, total int) {
				if total != 50 {
					t.Errorf("total = %d, want 50", total)
				}
				mu.Lock()
				seen = append(seen, done)
				mu.Unlock()
			},
		}, make([]int, 50), func(_ context.Context, i int, _ int) (int, error) { return i, nil })
		if err != nil {
			t.Fatal(err)
		}
		if len(seen) != 50 {
			t.Fatalf("parallelism %d: %d progress calls, want 50", par, len(seen))
		}
		for i, d := range seen {
			if d != i+1 {
				t.Fatalf("parallelism %d: progress[%d] = %d, want %d", par, i, d, i+1)
			}
		}
	}
}

// TestEmptyAndDefaults: zero jobs succeed trivially; zero Options pick
// sane worker and queue sizes.
func TestEmptyAndDefaults(t *testing.T) {
	res, err := Map(context.Background(), Options{}, nil, func(context.Context, int, int) (int, error) {
		t.Fatal("fn must not run for empty input")
		return 0, nil
	})
	if err != nil || len(res) != 0 {
		t.Fatalf("empty input: res=%v err=%v", res, err)
	}
	if w := (Options{}).workers(); w < 1 {
		t.Fatalf("default workers = %d", w)
	}
	if q := (Options{}).queue(4); q != 8 {
		t.Fatalf("default queue for 4 workers = %d, want 8", q)
	}
	if q := (Options{QueueDepth: 3}).queue(4); q != 3 {
		t.Fatalf("explicit queue = %d, want 3", q)
	}
}

// TestBoundedQueueBackpressure: the producer never buffers more than
// QueueDepth jobs ahead of the consumers.
func TestBoundedQueueBackpressure(t *testing.T) {
	var inFlight, peak atomic.Int64
	gate := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, err := Map(context.Background(), Options{Parallelism: 2, QueueDepth: 2}, make([]int, 64), func(_ context.Context, i int, _ int) (int, error) {
			cur := inFlight.Add(1)
			for {
				old := peak.Load()
				if cur <= old || peak.CompareAndSwap(old, cur) {
					break
				}
			}
			<-gate
			inFlight.Add(-1)
			return i, nil
		})
		if err != nil {
			t.Error(err)
		}
	}()
	// Let the pool fill: 2 running + 2 queued is the ceiling.
	time.Sleep(20 * time.Millisecond)
	for i := 0; i < 64; i++ {
		gate <- struct{}{}
	}
	<-done
	if p := peak.Load(); p > 2 {
		t.Fatalf("peak concurrent jobs = %d, want <= 2", p)
	}
}

// TestSeedsIndependence: derived seeds are deterministic, unique, and
// differ from the base.
func TestSeedsIndependence(t *testing.T) {
	const base = 11
	a, b := Seeds(base, 256), Seeds(base, 256)
	seen := map[uint64]bool{base: true}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Seeds not deterministic at %d", i)
		}
		if seen[a[i]] {
			t.Fatalf("duplicate seed at %d: %d", i, a[i])
		}
		seen[a[i]] = true
	}
	if DeriveSeed(base, 0) == DeriveSeed(base+1, 0) {
		t.Fatal("different bases must derive different seeds")
	}
}
