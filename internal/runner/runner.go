// Package runner is the experiment-execution substrate: a
// context-aware worker pool that shards independent simulation runs
// across GOMAXPROCS goroutines while keeping every result observably
// identical to a serial loop.
//
// Design constraints, in order:
//
//   - Determinism. Results are collected in input order, so a sweep
//     rendered from a parallel run is byte-identical to the serial
//     render. Jobs must not share RNG state; DeriveSeed gives each
//     job an independent SplitMix64 stream from one base seed.
//   - Backpressure. Producers feed a bounded queue (QueueDepth slots)
//     so a million-point sweep never materializes a million goroutines
//     or channel entries at once.
//   - Cancellation. The context is observed between jobs and passed to
//     each job; cancelling stops submission promptly and returns
//     ctx.Err() joined with whatever job errors already occurred.
//   - Error aggregation. A failing job cancels the remaining work, but
//     every error observed before the pool drains is reported via
//     errors.Join — nothing is silently dropped.
//   - Progress. An optional callback observes monotonically increasing
//     completion counts, for -progress style CLI feedback.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// Options tunes a Map call. The zero value is ready to use: full
// parallelism, a queue twice the worker count, no progress reporting.
type Options struct {
	// Parallelism is the worker count. <= 0 means GOMAXPROCS(0);
	// 1 degenerates to a serial loop (the -serial escape hatch).
	Parallelism int
	// QueueDepth bounds the submission queue. <= 0 means twice the
	// effective parallelism.
	QueueDepth int
	// Progress, when non-nil, is called after each job completes with
	// the number of completed jobs and the total. Calls are serialized
	// (under the pool's lock, so keep the callback fast) and done is
	// strictly increasing, but the jobs they report may complete out
	// of input order.
	Progress func(done, total int)
}

func (o Options) workers() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) queue(workers int) int {
	if o.QueueDepth > 0 {
		return o.QueueDepth
	}
	return 2 * workers
}

// JobError wraps the failure of one job with its input index so
// callers can tell which point of a sweep failed.
type JobError struct {
	Index int
	Err   error
}

func (e *JobError) Error() string { return fmt.Sprintf("job %d: %v", e.Index, e.Err) }

// Unwrap exposes the underlying job failure to errors.Is/As.
func (e *JobError) Unwrap() error { return e.Err }

// Map runs fn over every job, at most Options.Parallelism at a time,
// and returns the results in input order. On any failure it returns a
// nil slice and the aggregate error; the first failure cancels the
// jobs not yet started (in-flight jobs run to completion).
func Map[T, R any](ctx context.Context, opt Options, jobs []T, fn func(ctx context.Context, index int, job T) (R, error)) ([]R, error) {
	total := len(jobs)
	if total == 0 {
		return []R{}, nil
	}
	workers := opt.workers()
	if workers > total {
		workers = total
	}

	if workers == 1 {
		// Serial escape hatch: same semantics, no goroutines, so the
		// parallel path can be cross-checked against a plain loop.
		results := make([]R, total)
		for i, job := range jobs {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			r, err := fn(ctx, i, job)
			if err != nil {
				return nil, &JobError{Index: i, Err: err}
			}
			results[i] = r
			if opt.Progress != nil {
				opt.Progress(i+1, total)
			}
		}
		return results, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type indexed struct {
		index int
		job   T
	}
	queue := make(chan indexed, opt.queue(workers))
	results := make([]R, total)

	var (
		mu   sync.Mutex
		errs []*JobError
		done int
	)
	fail := func(i int, err error) {
		mu.Lock()
		errs = append(errs, &JobError{Index: i, Err: err})
		mu.Unlock()
		cancel()
	}
	complete := func() {
		mu.Lock()
		done++
		if opt.Progress != nil {
			// Under the lock so counts arrive strictly increasing;
			// the callback must therefore be fast.
			opt.Progress(done, total)
		}
		mu.Unlock()
	}

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for item := range queue {
				if ctx.Err() != nil {
					continue // drain without running once cancelled
				}
				r, err := fn(ctx, item.index, item.job)
				if err != nil {
					fail(item.index, err)
					continue
				}
				results[item.index] = r
				complete()
			}
		}()
	}

	// Bounded-queue producer: blocks when the queue is full, bails
	// out as soon as the run is cancelled.
feed:
	for i, job := range jobs {
		select {
		case queue <- indexed{index: i, job: job}:
		case <-ctx.Done():
			break feed
		}
	}
	close(queue)
	wg.Wait()

	if len(errs) > 0 {
		// Deterministic aggregate: job order, not completion order.
		sort.Slice(errs, func(a, b int) bool { return errs[a].Index < errs[b].Index })
		joined := make([]error, len(errs))
		for i, e := range errs {
			joined[i] = e
		}
		return nil, errors.Join(joined...)
	}
	if done != total {
		// No job failed yet not everything ran: the caller's context
		// was cancelled. Our own cancel only fires on job errors.
		return nil, ctx.Err()
	}
	return results, nil
}

// Seeds returns n statistically independent seeds derived from base,
// one per job, so parallel workers never share RNG state yet the whole
// sweep stays reproducible from a single seed.
func Seeds(base uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = DeriveSeed(base, i)
	}
	return out
}

// DeriveSeed mixes a job index into a base seed with two rounds of the
// SplitMix64 finalizer — the same generator family taskset.Rand uses —
// so neighbouring indices yield uncorrelated streams.
func DeriveSeed(base uint64, index int) uint64 {
	z := base + (uint64(index)+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
