#!/usr/bin/env bash
# bench_engine_json.sh <bench.txt> <BENCH_engine.json>
#
# Extracts the engine-substrate benchmarks from `go test -bench .
# -benchmem` output into a JSON artefact: the throughput family
# (BenchmarkEngineThroughput/cores=N streaming across the core-count
# axis, plus ...Retain) with events/sec, B/op and allocs/op, the
# BenchmarkEngineScaling/tasks=N task-count
# series, the BenchmarkEngineFastForward/horizon=H/mode=full|ff pairs
# with their derived fastforward_speedup rows (full ns/op over ff
# ns/op per horizon), the BenchmarkEngineOpenArrivals source-driven
# release row, and the derived sub-linearity ratio — per-event
# cost at the largest size over the smallest, next to the task-count
# ratio it should stay far below. Fails when any benchmark family is
# missing so CI notices a silently skipped run, and when any
# events_per_sec field is absent — that field feeds the perf gate
# (scripts/bench_gate.sh), and a silent "null" there would let a
# benchmark rename or a dropped ReportMetric disable the gate without
# anyone noticing.
set -euo pipefail

in=${1:-bench.txt}
out=${2:-BENCH_engine.json}
# The gate's focused run (make bench-gate) measures only the
# throughput pair; REQUIRE_SCALING=0 / REQUIRE_FASTFORWARD=0 let it
# use this extractor without the scaling and fast-forward families.
# The full bench-json artifact keeps the default (all mandatory).
require_scaling=${REQUIRE_SCALING:-1}
require_fastforward=${REQUIRE_FASTFORWARD:-1}
require_openarrivals=${REQUIRE_OPENARRIVALS:-1}

awk -v require_scaling="$require_scaling" -v require_fastforward="$require_fastforward" -v require_openarrivals="$require_openarrivals" '
function val(k) { return (k in v) ? v[k] : "null" }
# Gate-feeding fields are mandatory: record the miss and fail in END
# (after the full report, so one run surfaces every missing field).
function must(k) {
    if (!(k in v)) {
        printf "bench_engine_json: %s is missing %s\n", name, k > "/dev/stderr"
        missing = 1
        return "null"
    }
    return v[k]
}
BEGIN { printf "[\n"; sep = "" }
/^BenchmarkEngineThroughput(Retain)?-?[0-9]*[ \t]/ || /^BenchmarkEngineThroughput\/cores=/ || /^BenchmarkEngineScaling\// || /^BenchmarkEngineFastForward\// || /^BenchmarkEngineOpenArrivals-?[0-9]*[ \t]/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    delete v
    for (i = 3; i + 1 <= NF; i += 2) v[$(i+1)] = $i
    if (name ~ /^BenchmarkEngineFastForward\//) {
        h = name; sub(/^BenchmarkEngineFastForward\/horizon=/, "", h); sub(/\/mode=.*$/, "", h)
        mode = name; sub(/^.*\/mode=/, "", mode)
        printf "%s  {\"benchmark\":\"%s\",\"horizon\":\"%s\",\"mode\":\"%s\",\"ns_per_op\":%s,\"jobs\":%s,\"skipped_cycles\":%s,\"bytes_per_op\":%s,\"allocs_per_op\":%s}", \
            sep, name, h, mode, must("ns/op"), val("jobs"), val("skipped_cycles"), val("B/op"), val("allocs/op")
        if (!(h in ffseen)) { ffseen[h] = 1; horder[++nh] = h }
        if (mode == "full") fullns[h] = v["ns/op"]; else if (mode == "ff") ffns[h] = v["ns/op"]
        fastforward = 1
    } else if (name ~ /^BenchmarkEngineScaling\//) {
        tasks = name; sub(/^BenchmarkEngineScaling\/tasks=/, "", tasks)
        printf "%s  {\"benchmark\":\"%s\",\"tasks\":%s,\"events\":%s,\"switches\":%s,\"events_per_sec\":%s,\"bytes_per_op\":%s,\"allocs_per_op\":%s}", \
            sep, name, tasks, val("events"), val("switches"), must("events_per_sec"), val("B/op"), val("allocs/op")
        if (v["events_per_sec"] > 0) {
            ns = 1e9 / v["events_per_sec"]
            if (mintasks == 0 || tasks + 0 < mintasks) { mintasks = tasks; minns = ns }
            if (tasks + 0 > maxtasks) { maxtasks = tasks; maxns = ns }
        }
        scaling = 1
    } else if (name ~ /^BenchmarkEngineOpenArrivals/) {
        printf "%s  {\"benchmark\":\"%s\",\"mode\":\"open-arrivals\",\"ns_per_op\":%s,\"trace_events\":%s,\"events_per_sec\":%s,\"bytes_per_op\":%s,\"allocs_per_op\":%s}", \
            sep, name, must("ns/op"), val("trace_events"), must("events_per_sec"), val("B/op"), val("allocs/op")
        openarrivals = 1
    } else if (name ~ /^BenchmarkEngineThroughput\/cores=/) {
        cores = name; sub(/^BenchmarkEngineThroughput\/cores=/, "", cores)
        printf "%s  {\"benchmark\":\"%s\",\"mode\":\"stream\",\"cores\":%s,\"ns_per_op\":%s,\"trace_events\":%s,\"events_per_sec\":%s,\"bytes_per_op\":%s,\"allocs_per_op\":%s}", \
            sep, name, cores, must("ns/op"), val("trace_events"), must("events_per_sec"), val("B/op"), val("allocs/op")
        seen["stream"] = 1
    } else {
        mode = (name ~ /Retain$/) ? "retain" : "stream"
        printf "%s  {\"benchmark\":\"%s\",\"mode\":\"%s\",\"ns_per_op\":%s,\"trace_events\":%s,\"events_per_sec\":%s,\"bytes_per_op\":%s,\"allocs_per_op\":%s}", \
            sep, name, mode, must("ns/op"), val("trace_events"), must("events_per_sec"), val("B/op"), val("allocs/op")
        seen[mode] = 1
    }
    sep = ",\n"
}
END {
    if (!("stream" in seen) || (!scaling && require_scaling)) {
        print "bench_engine_json: BenchmarkEngineThroughput / BenchmarkEngineScaling missing from input" > "/dev/stderr"
        exit 1
    }
    if (!fastforward && require_fastforward) {
        print "bench_engine_json: BenchmarkEngineFastForward missing from input" > "/dev/stderr"
        exit 1
    }
    if (!openarrivals && require_openarrivals) {
        print "bench_engine_json: BenchmarkEngineOpenArrivals missing from input" > "/dev/stderr"
        exit 1
    }
    if (missing) {
        print "bench_engine_json: mandatory gate-feeding field(s) missing (see above)" > "/dev/stderr"
        exit 1
    }
    for (i = 1; i <= nh; i++) {
        h = horder[i]
        if (fullns[h] > 0 && ffns[h] > 0) {
            printf "%s  {\"benchmark\":\"fastforward_speedup\",\"horizon\":\"%s\",\"full_ns_per_op\":%s,\"ff_ns_per_op\":%s,\"speedup_x\":%.1f}", \
                sep, h, fullns[h], ffns[h], fullns[h] / ffns[h]
            sep = ",\n"
        } else if (require_fastforward) {
            printf "bench_engine_json: fast-forward horizon %s is missing its full/ff pair\n", h > "/dev/stderr"
            exit 1
        }
    }
    if (maxns > 0 && minns > 0) {
        printf "%s  {\"benchmark\":\"scaling_sublinearity\",\"tasks_ratio\":%.1f,\"ns_per_event_ratio\":%.3f,\"ns_per_event_min_tasks\":%.1f,\"ns_per_event_max_tasks\":%.1f}\n", \
            sep, maxtasks / mintasks, maxns / minns, minns, maxns
    } else {
        printf "\n"
    }
    print "]"
}
' "$in" > "$out"

echo "wrote $out:" >&2
cat "$out" >&2
