#!/usr/bin/env bash
# bench_engine_json.sh <bench.txt> <BENCH_engine.json>
#
# Extracts the engine-substrate benchmarks from `go test -bench .
# -benchmem` output into a JSON artefact: the throughput pair
# (BenchmarkEngineThroughput streaming / ...Retain) with events/sec,
# B/op and allocs/op, the BenchmarkEngineScaling/tasks=N task-count
# series, and the derived sub-linearity ratio — per-event cost at the
# largest size over the smallest, next to the task-count ratio it
# should stay far below. Fails when either benchmark family is
# missing so CI notices a silently skipped run.
set -euo pipefail

in=${1:-bench.txt}
out=${2:-BENCH_engine.json}

awk '
function val(k) { return (k in v) ? v[k] : "null" }
BEGIN { printf "[\n"; sep = "" }
/^BenchmarkEngineThroughput(Retain)?-?[0-9]*[ \t]/ || /^BenchmarkEngineScaling\// {
    name = $1; sub(/-[0-9]+$/, "", name)
    delete v
    for (i = 3; i + 1 <= NF; i += 2) v[$(i+1)] = $i
    if (name ~ /^BenchmarkEngineScaling\//) {
        tasks = name; sub(/^BenchmarkEngineScaling\/tasks=/, "", tasks)
        printf "%s  {\"benchmark\":\"%s\",\"tasks\":%s,\"events\":%s,\"switches\":%s,\"events_per_sec\":%s,\"bytes_per_op\":%s,\"allocs_per_op\":%s}", \
            sep, name, tasks, val("events"), val("switches"), val("events_per_sec"), val("B/op"), val("allocs/op")
        if (v["events_per_sec"] > 0) {
            ns = 1e9 / v["events_per_sec"]
            if (mintasks == 0 || tasks + 0 < mintasks) { mintasks = tasks; minns = ns }
            if (tasks + 0 > maxtasks) { maxtasks = tasks; maxns = ns }
        }
        scaling = 1
    } else {
        mode = (name ~ /Retain$/) ? "retain" : "stream"
        printf "%s  {\"benchmark\":\"%s\",\"mode\":\"%s\",\"ns_per_op\":%s,\"trace_events\":%s,\"events_per_sec\":%s,\"bytes_per_op\":%s,\"allocs_per_op\":%s}", \
            sep, name, mode, val("ns/op"), val("trace_events"), val("events_per_sec"), val("B/op"), val("allocs/op")
        seen[mode] = 1
    }
    sep = ",\n"
}
END {
    if (!("stream" in seen) || !scaling) {
        print "bench_engine_json: BenchmarkEngineThroughput / BenchmarkEngineScaling missing from input" > "/dev/stderr"
        exit 1
    }
    if (maxns > 0 && minns > 0) {
        printf "%s  {\"benchmark\":\"scaling_sublinearity\",\"tasks_ratio\":%.1f,\"ns_per_event_ratio\":%.3f,\"ns_per_event_min_tasks\":%.1f,\"ns_per_event_max_tasks\":%.1f}\n", \
            sep, maxtasks / mintasks, maxns / minns, minns, maxns
    } else {
        printf "\n"
    }
    print "]"
}
' "$in" > "$out"

echo "wrote $out:" >&2
cat "$out" >&2
