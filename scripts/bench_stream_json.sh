#!/usr/bin/env bash
# bench_stream_json.sh <bench.txt> <BENCH_stream.json>
#
# Extracts the BenchmarkCollectRetain10m / BenchmarkCollectStream10m
# pair from `go test -bench . -benchmem` output into a JSON artefact
# comparing the two collection modes: ns/op, B/op, allocs/op, the
# derived per-job costs, and the retain/stream ratios. Fails when
# either benchmark is missing so CI notices a silently skipped pair,
# and when any field the arithmetic depends on is absent — an empty
# value would otherwise produce invalid JSON (or a silent zero ratio)
# instead of a red run.
set -euo pipefail

in=${1:-bench.txt}
out=${2:-BENCH_stream.json}

awk '
# Every field below feeds arithmetic or the JSON verbatim: a miss must
# be loud, not an empty substitution.
function must(k) {
    if (!(k in v)) {
        printf "bench_stream_json: %s is missing %s\n", name, k > "/dev/stderr"
        missing = 1
        return "null"
    }
    return v[k]
}
BEGIN { printf "[\n"; sep = "" }
/^BenchmarkCollect(Retain|Stream)10m/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    delete v
    for (i = 3; i + 1 <= NF; i += 2) v[$(i+1)] = $i
    mode = (name ~ /Retain/) ? "retain" : "stream"
    printf "%s  {\"benchmark\":\"%s\",\"mode\":\"%s\",\"ns_per_op\":%s,\"jobs\":%s,\"bytes_per_op\":%s,\"allocs_per_op\":%s,\"allocs_per_job\":%.3f,\"bytes_per_job\":%.3f}", \
        sep, name, mode, must("ns/op"), must("jobs"), must("B/op"), must("allocs/op"), \
        v["allocs/op"] / v["jobs"], v["B/op"] / v["jobs"]
    sep = ",\n"
    seen[mode] = 1
    r[mode "_ns"] = v["ns/op"]; r[mode "_b"] = v["B/op"]; r[mode "_a"] = v["allocs/op"]
}
END {
    if (!("retain" in seen) || !("stream" in seen)) {
        print "bench_stream_json: BenchmarkCollectRetain10m/Stream10m missing from input" > "/dev/stderr"
        exit 1
    }
    if (missing) {
        print "bench_stream_json: mandatory field(s) missing (see above)" > "/dev/stderr"
        exit 1
    }
    printf "%s  {\"benchmark\":\"retain_vs_stream\",\"ns_ratio\":%.3f,\"bytes_ratio\":%.3f,\"allocs_ratio\":%.3f}\n", \
        sep, r["retain_ns"] / r["stream_ns"], r["retain_b"] / r["stream_b"], r["retain_a"] / r["stream_a"]
    print "]"
}
' "$in" > "$out"

echo "wrote $out:" >&2
cat "$out" >&2
