#!/usr/bin/env bash
# bench_gate.sh [fresh BENCH_gate.json] [bench/history]
#
# Perf-regression gate: compares a fresh gate capture (as written by
# scripts/bench_engine_json.sh from the focused `make bench-gate`
# run) against the last committed baseline in bench/history/ and
# exits non-zero when any benchmark's events_per_sec dropped more
# than GATE_TOLERANCE_PCT percent (default 15). A benchmark present
# in the baseline but absent (or null) in the fresh run is also a
# failure — a rename must come with a baseline refresh, not silently
# leave the gate with nothing to check.
#
# Both sides may carry several entries per benchmark (-count N runs);
# the gate compares the best draw on each side — on a contended 1-CPU
# runner the max over a few repetitions is a far stabler proxy for
# capacity than any single draw, which jitters by 20%+ on the
# sub-millisecond benchmarks. On top of that, the 15% default
# tolerance is a deliberate noise allowance: the gate is there to
# catch step changes — an accidental O(n) scan on the hot path, a
# lost allocation-free fast path — not single-digit drift. Speedups
# never fail; refresh the baseline (see bench/history/README.md) when
# one should become the new floor.
set -euo pipefail

fresh=${1:-BENCH_gate.json}
history=${2:-bench/history}
tol=${GATE_TOLERANCE_PCT:-15}

if [ ! -f "$fresh" ]; then
    echo "bench_gate: fresh results $fresh not found (run make bench-gate first)" >&2
    exit 1
fi

# The baseline is the highest-numbered history entry; entries are
# append-only, so lexicographic order is chronological order. Gate
# against the entry's focused BENCH_gate.json capture, falling back
# to its full BENCH_engine.json artifact for entries predating the
# focused-capture split.
baseline_dir=$(find "$history" -mindepth 1 -maxdepth 1 -type d | LC_ALL=C sort | tail -n 1)
base=$baseline_dir/BENCH_gate.json
if [ -n "$baseline_dir" ] && [ ! -f "$base" ]; then
    base=$baseline_dir/BENCH_engine.json
fi
if [ -z "$baseline_dir" ] || [ ! -f "$base" ]; then
    echo "bench_gate: no committed baseline under $history" >&2
    exit 1
fi

echo "bench_gate: fresh $fresh vs baseline $base (tolerance ${tol}%)"

failed=0
compared=0
while read -r name basev; do
    freshv=$(jq -r --arg n "$name" \
        '[.[] | select(.benchmark == $n) | .events_per_sec | select(. != null and . > 0)]
         | if length == 0 then "missing" else max end' "$fresh")
    if [ "$freshv" = "missing" ]; then
        echo "bench_gate: FAIL $name: in baseline but missing from the fresh run" >&2
        failed=1
        continue
    fi
    compared=$((compared + 1))
    # Verdict and rounded percent change in one jq pass (bash has no
    # floats); "FAIL -31.2%" or "ok -4%".
    line=$(jq -rn --argjson f "$freshv" --argjson b "$basev" --argjson tol "$tol" '
        (if $f < $b * (1 - $tol / 100) then "FAIL" else "ok" end)
          + " \(($f - $b) / $b * 1000 | round / 10)"')
    verdict=${line%% *}
    pct=${line#* }
    printf 'bench_gate: %-4s %s: %s -> %s events/sec (%s%%)\n' \
        "$verdict" "$name" "$basev" "$freshv" "$pct"
    if [ "$verdict" = FAIL ]; then failed=1; fi
done < <(jq -r 'map(select(.events_per_sec != null and .events_per_sec > 0))
    | group_by(.benchmark)[]
    | "\(.[0].benchmark) \(map(.events_per_sec) | max)"' "$base")

if [ "$compared" -eq 0 ]; then
    echo "bench_gate: baseline $base has no events_per_sec entries — nothing gated" >&2
    exit 1
fi
if [ "$failed" -ne 0 ]; then
    echo "bench_gate: events/sec regressed beyond ${tol}% of $base" >&2
    echo "bench_gate: if intentional, refresh the baseline (bench/history/README.md)" >&2
    exit 1
fi
echo "bench_gate: ok — $compared benchmark(s) within ${tol}% of baseline"
