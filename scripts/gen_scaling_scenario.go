//go:build ignore

// gen_scaling_scenario regenerates testdata/scenarios/scaling-100.json:
// the X10 sweep's 100-task synthetic system (see
// experiments.ScalingSet) baked into a declarative scenario, so the
// scenario tooling — rtrun -scenario, the trace-golden harness, the
// round-trip tests — exercises a large system, not just the paper's
// three tasks. Run from the repository root:
//
//	go run scripts/gen_scaling_scenario.go
package main

import (
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/vtime"
	"repro/sim/scenario"
)

func main() {
	set, err := experiments.ScalingSet(100, experiments.ScalingSeed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	sc := scenario.Scenario{
		Name: "scaling-100",
		Description: "X10 large-system scenario: the sweep's generator-backed 100-task set " +
			"(UUniFast U=0.6, log-uniform periods, rate-monotonic priorities) under streaming " +
			"collection; admission control skipped — this scenario exercises the engine substrate",
		Horizon:       scenario.Duration(10 * vtime.Second),
		SkipAdmission: true,
		Collect:       &scenario.Collect{Mode: scenario.CollectStream},
	}
	for _, t := range set.Tasks {
		sc.Tasks = append(sc.Tasks, scenario.FromTask(t))
	}
	if err := sc.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	f, err := os.Create("testdata/scenarios/scaling-100.json")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	if err := scenario.Encode(f, &sc); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("wrote testdata/scenarios/scaling-100.json")
}
