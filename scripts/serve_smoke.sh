#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke of the serving stack, using only
# repo binaries (no curl/jq): boot rtserved, prove the cache contract
# (miss then hit, byte-equal bodies, byte-equal to a local `rtrun
# -scenario` run), hold a pinned latency SLO on a cached burst, then
# saturate a deliberately tiny second instance and prove the admission
# layer sheds with 429s that /metrics reflects.
#
# Environment:
#   SMOKE_SLO_P99   p99 bound for the cached burst (default 1s — the
#                   burst is cache-hit dominated, so even a loaded
#                   1-CPU runner clears this by orders of magnitude)
set -euo pipefail

cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
server_pid=""
sat_pid=""
cleanup() {
  status=$?
  [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null
  [ -n "$sat_pid" ] && kill "$sat_pid" 2>/dev/null
  wait 2>/dev/null
  rm -rf "$tmp"
  exit "$status"
}
trap cleanup EXIT

die() {
  echo "serve-smoke: $*" >&2
  exit 1
}

# wait_port <file>: the port-file handshake — rtserved renames the
# file into place only after the listener is bound.
wait_port() {
  for _ in $(seq 1 100); do
    [ -s "$1" ] && return 0
    sleep 0.1
  done
  return 1
}

echo "serve-smoke: building rtserved, rtload, rtrun" >&2
go build -o "$tmp/rtserved" ./cmd/rtserved
go build -o "$tmp/rtload" ./cmd/rtload
go build -o "$tmp/rtrun" ./cmd/rtrun

scen=testdata/scenarios/figure5.json
mix="$scen,testdata/scenarios/jitter-stop.json"

"$tmp/rtserved" -addr 127.0.0.1:0 -workers 2 -queue 8 -port-file "$tmp/port" 2>"$tmp/rtserved.log" &
server_pid=$!
wait_port "$tmp/port" || { cat "$tmp/rtserved.log" >&2; die "server never wrote its port file"; }
url="http://$(cat "$tmp/port")"
echo "serve-smoke: rtserved at $url" >&2

"$tmp/rtload" -url "$url" -health || die "/healthz never answered"

# The cache contract: first POST is a miss, the repeat is a hit, and
# both bodies are byte-identical.
"$tmp/rtload" -url "$url" -scenario "$scen" -post -out "$tmp/r1.txt" 2>"$tmp/h1" \
  || { cat "$tmp/h1" >&2; die "first POST failed"; }
grep -q 'status=200 cache=miss' "$tmp/h1" || { cat "$tmp/h1" >&2; die "first POST was not a 200 miss"; }
"$tmp/rtload" -url "$url" -scenario "$scen" -post -out "$tmp/r2.txt" 2>"$tmp/h2" \
  || { cat "$tmp/h2" >&2; die "repeat POST failed"; }
grep -q 'status=200 cache=hit' "$tmp/h2" || { cat "$tmp/h2" >&2; die "repeat POST was not a 200 cache hit"; }
cmp "$tmp/r1.txt" "$tmp/r2.txt" || die "cache hit returned different bytes than the miss"

# The serving contract: the served report is byte-equal to what a
# local `rtrun -scenario` run prints (the summary on stderr).
"$tmp/rtrun" -scenario "$scen" >/dev/null 2>"$tmp/local.txt"
cmp "$tmp/r1.txt" "$tmp/local.txt" || die "served report differs from rtrun -scenario"
echo "serve-smoke: served report byte-equal to rtrun, cache hit verified" >&2

# Pinned latency SLO on a cached burst.
"$tmp/rtload" -url "$url" -scenario "$mix" -rate 40 -duration 2s -slo-p99 "${SMOKE_SLO_P99:-1s}" \
  || die "cached burst missed its latency SLO"

# Saturation: a deliberately tiny instance (one worker, one queue
# slot) under content-unique load must shed with 429s — and keep
# serving — rather than queue without bound.
"$tmp/rtserved" -addr 127.0.0.1:0 -workers 1 -queue 1 -port-file "$tmp/satport" 2>"$tmp/sat.log" &
sat_pid=$!
wait_port "$tmp/satport" || { cat "$tmp/sat.log" >&2; die "saturation server never wrote its port file"; }
saturl="http://$(cat "$tmp/satport")"
"$tmp/rtload" -url "$saturl" -scenario testdata/scenarios/scaling-100.json \
  -unique -rate 200 -duration 1s -concurrency 16 -min-throttled 1 \
  || die "saturating burst did not shed (or errored)"
"$tmp/rtload" -url "$saturl" -metrics >"$tmp/metrics.json"
grep -Eq '"throttled": [1-9]' "$tmp/metrics.json" || { cat "$tmp/metrics.json" >&2; die "/metrics does not reflect the shed load"; }
"$tmp/rtload" -url "$saturl" -health || die "server unhealthy after saturation"

echo "serve-smoke: OK (cache, byte-equality, SLO, shedding, metrics)" >&2
