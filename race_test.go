//go:build race

package repro

// raceEnabled reports whether the race detector instruments this
// build; timing-sensitive tests skip themselves under it.
const raceEnabled = true
