package repro

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// The bench gate is shell + jq; these tests prove the two properties
// CI relies on: the committed baseline passes its own gate, and a
// synthetically degraded bench.txt — pushed through the real
// bench_engine_json.sh extractor — fails it. Skipped where the
// interpreters are absent (the CI image and the dev container have
// both).
func requireTools(t *testing.T, tools ...string) {
	t.Helper()
	for _, tool := range tools {
		if _, err := exec.LookPath(tool); err != nil {
			t.Skipf("%s not installed", tool)
		}
	}
}

// runScript executes a repo script with the repo root as cwd.
func runScript(t *testing.T, env []string, script string, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command("bash", append([]string{script}, args...)...)
	cmd.Env = append(os.Environ(), env...)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	err := cmd.Run()
	return out.String(), err
}

// latestBaseline returns the highest committed bench/history entry —
// the same selection rule bench_gate.sh applies.
func latestBaseline(t *testing.T) string {
	t.Helper()
	entries, err := os.ReadDir(filepath.Join("bench", "history"))
	if err != nil {
		t.Fatalf("bench/history missing: %v", err)
	}
	var dirs []string
	for _, e := range entries {
		if e.IsDir() {
			dirs = append(dirs, e.Name())
		}
	}
	if len(dirs) == 0 {
		t.Fatal("bench/history has no baseline entries")
	}
	sort.Strings(dirs)
	return filepath.Join("bench", "history", dirs[len(dirs)-1])
}

type benchEntry struct {
	Benchmark    string   `json:"benchmark"`
	Tasks        *int     `json:"tasks"`
	EventsPerSec *float64 `json:"events_per_sec"`
}

// degradedBenchTxt renders a synthetic `go test -bench` output whose
// events_per_sec figures are the committed baseline's scaled by
// factor — the input a regressed engine would produce.
func degradedBenchTxt(t *testing.T, baseline string, factor float64) string {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join(baseline, "BENCH_gate.json"))
	if err != nil {
		t.Fatal(err)
	}
	var entries []benchEntry
	if err := json.Unmarshal(raw, &entries); err != nil {
		t.Fatalf("baseline JSON: %v", err)
	}
	var b strings.Builder
	for _, e := range entries {
		if e.EventsPerSec == nil {
			continue // derived entries (scaling_sublinearity) have no rate
		}
		eps := int(*e.EventsPerSec * factor)
		if e.Tasks != nil {
			fmt.Fprintf(&b, "%s-1 \t 1 \t 100 ns/op \t 10 events \t %d events_per_sec \t 5 switches \t 8 B/op \t 2 allocs/op\n",
				e.Benchmark, eps)
		} else {
			fmt.Fprintf(&b, "%s-1 \t 1 \t 100 ns/op \t %d events_per_sec \t 10 trace_events \t 8 B/op \t 2 allocs/op\n",
				e.Benchmark, eps)
		}
	}
	return b.String()
}

// TestBenchGatePassesOnBaseline: the committed baseline gates itself
// at 0% change.
func TestBenchGatePassesOnBaseline(t *testing.T) {
	requireTools(t, "bash", "jq", "find")
	fresh := filepath.Join(latestBaseline(t), "BENCH_gate.json")
	out, err := runScript(t, nil, filepath.Join("scripts", "bench_gate.sh"), fresh)
	if err != nil {
		t.Fatalf("gate failed on its own baseline: %v\n%s", err, out)
	}
	if !strings.Contains(out, "bench_gate: ok —") {
		t.Errorf("gate output missing the pass summary:\n%s", out)
	}
}

// TestBenchGateFailsOnDegradedBench: a bench.txt with every
// events_per_sec halved flows through the real extractor and trips
// the gate; raising GATE_TOLERANCE_PCT past the injected loss lets
// the same numbers through (the 1-CPU noise-allowance knob).
func TestBenchGateFailsOnDegradedBench(t *testing.T) {
	requireTools(t, "bash", "jq", "awk", "find")
	dir := t.TempDir()
	benchTxt := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(benchTxt, []byte(degradedBenchTxt(t, latestBaseline(t), 0.5)), 0o644); err != nil {
		t.Fatal(err)
	}
	freshJSON := filepath.Join(dir, "BENCH_gate.json")
	// REQUIRE_SCALING=0 REQUIRE_FASTFORWARD=0 REQUIRE_OPENARRIVALS=0:
	// the gate capture holds only the throughput pair, exactly as make
	// bench-gate invokes the extractor.
	if out, err := runScript(t, []string{"REQUIRE_SCALING=0", "REQUIRE_FASTFORWARD=0", "REQUIRE_OPENARRIVALS=0"},
		filepath.Join("scripts", "bench_engine_json.sh"), benchTxt, freshJSON); err != nil {
		t.Fatalf("bench_engine_json.sh rejected the synthetic bench.txt: %v\n%s", err, out)
	}

	out, err := runScript(t, nil, filepath.Join("scripts", "bench_gate.sh"), freshJSON)
	if err == nil {
		t.Fatalf("gate passed a 50%% events/sec regression:\n%s", out)
	}
	if !strings.Contains(out, "FAIL") || !strings.Contains(out, "events/sec regressed") {
		t.Errorf("gate failure does not name the regression:\n%s", out)
	}

	out, err = runScript(t, []string{"GATE_TOLERANCE_PCT=60"},
		filepath.Join("scripts", "bench_gate.sh"), freshJSON)
	if err != nil {
		t.Errorf("gate failed a 50%% loss at 60%% tolerance: %v\n%s", err, out)
	}
}

// TestBenchGateFailsOnMissingBenchmark: a fresh run that silently
// dropped a gated benchmark is a failure, not a smaller comparison.
func TestBenchGateFailsOnMissingBenchmark(t *testing.T) {
	requireTools(t, "bash", "jq", "find")
	raw, err := os.ReadFile(filepath.Join(latestBaseline(t), "BENCH_gate.json"))
	if err != nil {
		t.Fatal(err)
	}
	var entries []benchEntry
	if err := json.Unmarshal(raw, &entries); err != nil {
		t.Fatal(err)
	}
	// Drop every entry of the first gated benchmark (baselines carry
	// -count repetitions, so pruning one line would leave the rest).
	var victim string
	for _, e := range entries {
		if e.EventsPerSec != nil {
			victim = e.Benchmark
			break
		}
	}
	if victim == "" {
		t.Fatal("baseline has no gated entries")
	}
	var raws []json.RawMessage
	if err := json.Unmarshal(raw, &raws); err != nil {
		t.Fatal(err)
	}
	kept := raws[:0]
	for i, e := range entries {
		if e.Benchmark != victim {
			kept = append(kept, raws[i])
		}
	}
	pruned, err := json.Marshal(kept)
	if err != nil {
		t.Fatal(err)
	}
	fresh := filepath.Join(t.TempDir(), "BENCH_engine.json")
	if err := os.WriteFile(fresh, pruned, 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := runScript(t, nil, filepath.Join("scripts", "bench_gate.sh"), fresh)
	if err == nil {
		t.Fatalf("gate passed with a baseline benchmark missing:\n%s", out)
	}
	if !strings.Contains(out, "missing from the fresh run") {
		t.Errorf("gate failure does not name the missing benchmark:\n%s", out)
	}
}

// TestBenchEngineJSONMandatoryFields: the extractor refuses a
// bench.txt whose throughput lines lost events_per_sec — that field
// feeds the gate, so "null" there must be a red run, not an artefact.
func TestBenchEngineJSONMandatoryFields(t *testing.T) {
	requireTools(t, "bash", "awk")
	dir := t.TempDir()
	benchTxt := filepath.Join(dir, "bench.txt")
	stripped := "BenchmarkEngineThroughput-1 \t 1 \t 100 ns/op \t 10 trace_events \t 8 B/op \t 2 allocs/op\n" +
		"BenchmarkEngineScaling/tasks=10-1 \t 1 \t 100 ns/op \t 10 events \t 5 switches \t 8 B/op \t 2 allocs/op\n"
	if err := os.WriteFile(benchTxt, []byte(stripped), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := runScript(t, nil, filepath.Join("scripts", "bench_engine_json.sh"),
		benchTxt, filepath.Join(dir, "out.json"))
	if err == nil {
		t.Fatalf("extractor accepted lines without events_per_sec:\n%s", out)
	}
	if !strings.Contains(out, "events_per_sec") {
		t.Errorf("extractor error does not name the missing field:\n%s", out)
	}
}
