# Mirrors .github/workflows/ci.yml so tier-1 verify is one command
# locally: `make ci`.

GO ?= go
# bash for pipefail in bench-json.
SHELL := /bin/bash

.PHONY: build test race bench bench-json fmt vet fmt-check x11 fuzz-smoke ci

build:
	$(GO) build ./...
	$(GO) build ./examples/...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

bench-json:
	set -o pipefail; $(GO) test -bench . -benchtime 1x -benchmem -run '^$$' ./... | tee bench.txt
	scripts/bench_stream_json.sh bench.txt BENCH_stream.json
	scripts/bench_engine_json.sh bench.txt BENCH_engine.json

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

# The X11 differential invariant sweep: 60 fixed-seed fuzzed
# scenarios, each run under the online invariant oracle in every
# legal collection mode, retained vs streamed reports cross-checked.
# Fails (after shrinking a reproducer into testdata/shrunk/) on any
# violation.
x11:
	$(GO) run ./cmd/rtexp -exp x11 > /dev/null

# Short native-fuzz smoke over the scenario space and the log codec.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzScenario -fuzztime 10s ./internal/verify/gen
	$(GO) test -run '^$$' -fuzz FuzzDecode -fuzztime 10s ./internal/trace

ci: build vet fmt-check race bench x11
