# Mirrors .github/workflows/ci.yml so tier-1 verify is one command
# locally: `make ci`.

GO ?= go
# bash for pipefail in bench-json.
SHELL := /bin/bash

.PHONY: build test race bench bench-json bench-gate script-lint fmt vet fmt-check x11 x12 x13 x14 x15 fuzz-smoke serve-smoke ci

build:
	$(GO) build ./...
	$(GO) build ./examples/...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

bench-json:
	set -o pipefail; $(GO) test -bench . -benchtime 1x -benchmem -run '^$$' ./... | tee bench.txt
	scripts/bench_stream_json.sh bench.txt BENCH_stream.json
	scripts/bench_engine_json.sh bench.txt BENCH_engine.json

# Perf-regression gate against the last committed bench/history
# baseline; fails on a >15% events/sec loss (GATE_TOLERANCE_PCT
# overrides). Only the engine throughput pair is gated on absolute
# events/sec: its sub-millisecond draws make best-of-5 a stable
# capacity estimate, where the multi-second scaling benchmarks stay
# correlated with whatever background load the runner happens to
# carry (the scaling axis is defended by the relative — and therefore
# noise-immune — TestDispatchCostSubLinear instead). A failed attempt
# re-measures up to twice: a transient load spike skews one
# measurement, not three independent ones.
bench-gate:
	@for i in 1 2 3; do \
		set -o pipefail; \
		if $(GO) test -bench 'BenchmarkEngineThroughput' -benchtime 100x -count 5 -benchmem -run '^$$' . | tee bench_gate.txt \
			&& REQUIRE_SCALING=0 REQUIRE_FASTFORWARD=0 REQUIRE_OPENARRIVALS=0 scripts/bench_engine_json.sh bench_gate.txt BENCH_gate.json \
			&& scripts/bench_gate.sh BENCH_gate.json; then \
			exit 0; \
		elif [ $$i -lt 3 ]; then \
			echo "bench-gate: attempt $$i failed; re-measuring (transient load?)" >&2; \
		fi; \
	done; exit 1

# Shell scripts must at least parse everywhere; shellcheck runs where
# installed (the CI image has it).
script-lint:
	bash -n scripts/*.sh
	@if command -v shellcheck > /dev/null; then \
		shellcheck scripts/*.sh; \
	else \
		echo "script-lint: shellcheck not installed, bash -n only" >&2; \
	fi

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

# The X11 differential invariant sweep: 60 fixed-seed fuzzed
# scenarios, each run under the online invariant oracle in every
# legal collection mode, retained vs streamed reports cross-checked.
# Fails (after shrinking a reproducer into testdata/shrunk/) on any
# violation.
x11:
	$(GO) run ./cmd/rtexp -exp x11 > /dev/null

# The X12 process-sharding differential: 24 checkpointable scenarios
# swept across 3 worker subprocesses (streamed accumulator states
# merged in the parent) vs the same scenarios run serially in-process;
# any report divergence fails.
x12:
	$(GO) run ./cmd/rtexp -exp x12 > /dev/null

# The X13 multiprocessor differential: 24 fixed-seed task sets run
# under both dispatch modes with the oracle armed; any invariant
# violation fails, and on every feasible-partition point the global
# success ratio must be at least the partitioned one.
x13:
	$(GO) run ./cmd/rtexp -exp x13 > /dev/null

# The X14 fast-forward differential: 48 fixed-seed fast-forward-
# eligible scenarios, each run full (oracle armed, retained) and
# fast-forwarded; any count/summary divergence or out-of-bound
# percentile fails, as does a sweep where no scenario engaged the
# jump.
x14:
	$(GO) run ./cmd/rtexp -exp x14 > /dev/null

# The X15 open-arrivals differential: 18 fixed-seed scenarios cycling
# the three arrival-source kinds (Poisson, MMPP, trace replay), each
# run with the oracle armed in both collection modes; any invariant
# violation or retain/stream divergence fails, as does a realized
# Poisson gap set breaking the KS exponentiality bound or a trace that
# does not re-encode byte-identically.
x15:
	$(GO) run ./cmd/rtexp -exp x15 > /dev/null

# End-to-end smoke of the serving stack: boot rtserved, prove the
# cache contract (miss/hit, byte-equality with `rtrun -scenario`),
# hold a pinned p99 SLO on a cached burst, and saturate a tiny
# instance to prove 429 shedding shows up in /metrics.
serve-smoke:
	scripts/serve_smoke.sh

# Short native-fuzz smoke over the scenario space, the log codec, and
# the checkpoint split/resume differential.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzScenario -fuzztime 10s ./internal/verify/gen
	$(GO) test -run '^$$' -fuzz FuzzDecode -fuzztime 10s ./internal/trace
	$(GO) test -run '^$$' -fuzz FuzzCheckpoint -fuzztime 10s ./internal/verify/gen

ci: build vet fmt-check script-lint race bench-json bench-gate x11 x12 x13 x14 x15 serve-smoke
