// Package repro is a from-scratch Go reproduction of "Fault Tolerance
// with Real-Time Java" (Damien Masson and Serge Midonnet, WPDRTS/IPPS
// 2006): admission control for fixed-priority periodic task systems
// (exact worst-case response-time analysis with arbitrary deadlines),
// temporal-fault detectors armed at each task's WCRT, and three fault
// treatments (immediate stop, equitable allowance, system allowance).
//
// The paper ran on the jRate RTSJ virtual machine over a TimeSys
// real-time kernel; this reproduction substitutes a deterministic
// discrete-event uniprocessor simulator with a nanosecond virtual
// clock (Go's garbage collector makes wall-clock hard real time
// unattainable, and virtual time makes every published figure exactly
// and deterministically reproducible). See DESIGN.md for the complete
// substitution table and system inventory, and EXPERIMENTS.md for
// paper-versus-measured results on every table and figure.
//
// Layout:
//
//   - sim — the public facade: functional-options builder, the
//     declarative Scenario spec, and the policy and experiment
//     registries (start here)
//   - sim/scenario — the JSON scenario codec (canonical, strict)
//   - internal/analysis — admission control (paper Section 2)
//   - internal/allowance — tolerance factors (Section 4.2/4.3)
//   - internal/detect — detectors and treatments (Sections 3–4)
//   - internal/engine — the simulated RT platform
//   - internal/rtsj — RTSJ-flavoured API (RealtimeThreadExtended…)
//   - internal/baselines — best-effort/RED/D-over comparators
//   - internal/experiments — one constructor per table and figure
//   - internal/runner — the parallel experiment-execution substrate
//   - internal/serve — the simulation-as-a-service HTTP layer
//     (content-addressed result cache, admission control, SSE)
//   - internal/verify — the online invariant oracle (+ gen, the
//     scenario fuzzer and shrinker)
//   - cmd/rtrun, cmd/rtchart, cmd/rtfeas, cmd/rtexp, cmd/rtworker,
//     cmd/rtserved, cmd/rtload — tools
//   - examples/ — runnable walkthroughs (examples/scenario shows
//     the sim facade end to end)
//
// # Public simulation API
//
// Package repro/sim is the supported entry point for building
// workloads. A simulation is described either with functional
// options (sim.New(sim.WithTasks(...), sim.WithPolicy("edf"), ...))
// or as a declarative, JSON-round-trippable sim.Scenario loaded from
// disk (sim.Load); both compile into the same internal core.System.
// Two name→factory registries make the description fully
// declarative: scheduling policies (fixed-priority plus the overload
// baselines; see sim.Policies) and experiments (every paper table,
// figure and extension sweep; see sim.Experiments). cmd/rtrun
// -scenario runs a spec file end to end, and cmd/rtexp -list
// enumerates the experiment registry. The direct non-Ctx sweep
// entry points of internal/experiments are deprecated in favour of
// their *Ctx forms and the registry entries.
//
// # Parallel experiment execution
//
// Every simulation sweep (X1, X2, X3, X5 and the X4 baseline
// comparison) submits its independent simulations to
// internal/runner, a context-aware worker
// pool that shards jobs across GOMAXPROCS goroutines behind a bounded
// queue. Three properties make the parallel path safe to use for
// reproduction artefacts:
//
//   - results are collected in input order, so rendered tables are
//     byte-identical to a serial run (cross-checked by tests and by
//     BenchmarkParallelSpeedup);
//   - no simulation shares RNG state — each job derives its own
//     SplitMix64 seed via runner.DeriveSeed;
//   - cancellation (rtexp ^C) stops submission promptly, and a
//     failing simulation cancels the remainder while every observed
//     error is aggregated via errors.Join.
//
// cmd/rtexp exposes the pool: -parallel N picks the worker count
// (0 = all cores), -serial forces the one-at-a-time path, -progress
// reports live done/total counts on stderr, and -json switches the
// artefacts to machine-readable JSON lines. X9 (the blocking
// trade-off) is a single closed-form analysis rather than a
// simulation sweep, so it runs inline and ignores those knobs.
//
// # Streaming collection
//
// A run retains, by default, every job record and every trace event —
// memory linear in the horizon. Streaming collection
// (sim.WithCollection(sim.CollectStream), the scenario "collect"
// block, rtrun -stream, rtexp -stream) bounds memory for
// long-horizon and soak runs: the engine recycles finished jobs,
// skips the in-memory log, and feeds each event to a trace.Sink — a
// metrics.Accumulator that maintains per-task counts, success
// ratios, response min/mean/max and an ε-approximate quantile sketch
// online, optionally teed with a trace.WriterSink that spills the
// byte-identical text log to disk (System.SpillTrace, rtrun
// -trace-out). Streaming reports equal retained reports exactly on
// every summary field; percentiles carry a ±εn rank-error bound
// (metrics.DefaultSketchEpsilon). Cross-mode equivalence, the sketch
// bound, and the O(1) allocs-per-job steady state are pinned by
// tests and by BenchmarkCollectRetain10m/BenchmarkCollectStream10m.
//
// # Typed event loop
//
// The engine's core loop dispatches typed, pointer-free event records
// (release, deadline check, completion prediction) through a switch
// instead of heap-allocated closures, so the steady-state loop
// allocates nothing per event; only external timers — detectors,
// supervisor stops, test hooks — carry a callback. Cancellation is
// eager: the event heap tracks the position of every cancellable
// entry, a job's deadline check is removed the instant the job
// finishes, and the single completion prediction is rekeyed in place
// at each dispatch, so the heap stays proportional to the live work
// (pending jobs + one release per task + external timers) rather than
// accumulating stale entries behind epoch guards. Dispatch pops the
// next job from an incrementally maintained policy-ordered ready
// queue — O(log tasks) per update — replacing the historical
// O(tasks) scan, which makes hundreds-of-tasks systems a first-class
// scenario dimension (the X10 sweep, rtexp -exp x10). Behavioural
// equivalence with the pre-rework engine is pinned byte-for-byte by
// the trace goldens under testdata/goldens.
//
// # Multiprocessor scheduling
//
// The paper's platform is a uniprocessor and every uniprocessor run
// is byte-identical to what it always was, but the engine itself is
// M-core (sim.WithCPUs, the scenario "cpus" field, rtrun -cpus).
// Global dispatch — the default — feeds all M cores from one shared
// policy-ordered ready queue, running the M policy-best ready jobs
// at every scheduling instant; a preempted job may resume on another
// core, recorded as a trace "migrate" event with the core id carried
// on begin/resume/preempt. Partitioned dispatch (sim.WithPlacement
// "partitioned") instead pins every task to one core before the run
// via utilization-decreasing bin packing — sched.FirstFitDecreasing
// by default, sched.BestFitDecreasing with "partitioner":
// "best-fit" — each core's feasibility proved by the paper's exact
// response-time analysis; cores then schedule independently and jobs
// never migrate. Multiprocessor runs use the bare engine (admission
// control and the fault treatments are uniprocessor machinery), so
// cpus > 1 admits treatment "none", no servers, and the
// fixed-priority/edf policies only — the strict codec rejects
// anything else. Checkpoints serialize per-core running state, the
// invariant oracle generalizes (per-core occupancy, migration
// legality, work conservation), and the x13 registry entry (rtexp
// -exp x13, run by make ci) sweeps seeded task sets under both
// disciplines, requiring global dispatch to succeed at least as
// often as any feasible partition of the same set.
//
// # Verification
//
// Beyond the byte-pinned goldens, internal/verify is an online
// invariant oracle: a trace.Sink that checks every recorded event
// against the scheduling axioms — monotone timestamps, single
// occupancy per core (with migration legality and work conservation
// on M-core runs), releases exactly per the task's declared release
// law — strictly periodic, or record-for-record against a fresh
// replay of its arrival source — resolved by their deadlines,
// policy-consistent dispatch order (fixed-priority exact, the EDF
// family via recomputed keys), detector fires at the paper's
// latest-detection bound, per-task conservation, and server budgets.
// Arm it with core.Config.Verify, sim.WithVerify, the scenario
// "verify": true, or rtrun -check; a violation fails the run with a
// *verify.Error naming each breach. internal/verify/gen fuzzes the
// scenario space (seeded UUniFast task sets × fault chains × policies
// × servers × collection modes × core counts) and shrinks a failing
// scenario to a
// minimal reproducer under testdata/shrunk. The x11 registry entry
// (rtexp -exp x11, run by make ci) sweeps 60 generated scenarios
// through the oracle in both collection modes and cross-checks the
// retained and streamed reports; go test -fuzz=FuzzScenario
// ./internal/verify/gen explores open-endedly, and the goldens
// themselves are replayed through the oracle so they stay valid
// semantically as well as byte-wise.
//
// # Open arrivals and trace replay
//
// The paper's model is strictly periodic; internal/taskset's Source
// abstraction opens it. A scenario "arrivals" block (sim.WithArrivals,
// rtrun -arrive) replaces a task's periodic release law with a seeded
// stochastic source — "poisson" (exponential inter-arrivals) or
// "mmpp" (a two-state Markov-modulated Poisson process for bursty
// traffic) — or with "trace", the replay of a recorded arrival log
// whose records carry per-release cost and deadline overrides.
// Task-targeted sources require skip_admission (open arrivals have no
// periodic admission analysis; they ride the bare engine), while
// server-targeted sources generate an aperiodic server's request
// stream in place of a static list. The trace grammar is canonical
// JSONL with strictly increasing releases — out-of-order input is
// rejected, not sorted — so ParseTrace ∘ EncodeTrace is the
// byte-for-byte identity; rtserved refuses path-referenced traces
// (their bytes are invisible to the content digest) but serves inline
// records. Sources are deterministic per seed, so the oracle replays
// each one independently and checks every release record for record,
// including arrivals due before the horizon that never released. The
// x15 registry entry (rtexp -exp x15, run by make ci) sweeps 18
// seeded scenarios across all three kinds in both collection modes,
// KS-tests realized Poisson gaps against the declared law, and
// round-trips every trace.
//
// # Checkpoints and process-sharded sweeps
//
// Engine state is serializable: with streaming collection, treatment
// "none" and no aperiodic servers, a run's complete dynamic state —
// virtual clock, typed event heap, per-task release/budget/job state,
// RNG and fault-model positions, plus the metrics.Accumulator
// (counters and mergeable quantile sketches) — round-trips through a
// versioned canonical-JSON checkpoint. sim.System.RunToCheckpoint
// stops at an instant and returns one; sim.Resume (rtrun -checkpoint
// / -resume on the command line) completes it, possibly in another
// process. The differential guarantee, pinned across fuzzed scenarios
// (FuzzCheckpoint) and at every split fraction, is exact: the two
// trace spills concatenate byte-identically to the unsplit run's
// trace and the final report is equal on every field, percentiles
// included.
//
// Serializable state is what lets sweeps shard across processes, not
// just goroutines: internal/runner.MapProc fans jobs out to worker
// subprocesses over a JSON-lines stdin/stdout protocol (re-dispatching
// on worker death), and sim.ShardedSweep runs scenario batches on
// such workers — each streams back its serialized accumulator state,
// which the parent merges (metrics sketches merge with summed ε
// bounds) or compares per-scenario. Workers are the re-executed
// parent binary (sim.RunShardWorkerIfEnv) or the standalone
// cmd/rtworker, so non-Go orchestrators can dispatch too. The x12
// registry entry (rtexp -exp x12, run by make ci) proves
// process-sharded ≡ serial across a 24-scenario sweep.
//
// # Fast-forward
//
// Strictly periodic task sets revisit the same scheduling state every
// hyperperiod once transients drain, so long horizons mostly
// re-simulate one cycle. With fast-forward (sim.WithFastForward, the
// scenario "fast_forward" field, rtrun -fast-forward) the engine
// fingerprints its clock-relative state at each hyperperiod boundary
// (FNV-1a over the event heap, pending/running jobs, release
// positions and RNG); when two consecutive boundaries match it jumps
// the remaining whole cycles analytically — counts and response
// moments scale linearly, the quantile sketch absorbs the repeated
// cycle via metrics.ScaleMerge (total rank error at most 2ε however
// many cycles are skipped), and clock/heap/release state shift by a
// multiple of the hyperperiod — then simulates the tail. That turns
// O(horizon) runs into O(transient + one cycle): ~931× at a 10-hour
// horizon (BenchmarkEngineFastForward, with derived
// fastforward_speedup rows in BENCH_engine.json). Eligibility is
// strict because the jump is exact only under deterministic periodic
// recurrence — streaming collection, treatment "none", no faults,
// jitter, servers, oracle, trace spill or checkpoints — and the x14
// registry entry (rtexp -exp x14, run by make ci) pins the
// differential: 48 seeded eligible scenarios run full (oracle armed,
// retained) and fast-forwarded, with exact agreement required on
// every count and moment and percentiles inside the widened ±2εn
// rank window.
//
// # Serving
//
// cmd/rtserved (over internal/serve) exposes the simulator as a
// long-running HTTP/JSON service: POST a canonical scenario document
// to /v1/simulate and receive exactly the report a local rtrun
// -scenario run prints — byte-equal, pinned by test — in a JSON
// envelope or raw via ?format=report. Results are deduplicated
// through a content-addressed cache keyed by scenario.Digest (SHA-256
// of the canonical scenario bytes plus scenario.SchemaVersion, so an
// engine behaviour change invalidates every stale key): repeat
// requests are cache hits, and N concurrent identical POSTs are
// single-flighted into one simulation. Work is admitted onto a
// bounded internal/runner pool; a full accept queue sheds load with
// HTTP 429 + Retry-After rather than queueing without bound, and GET
// /healthz + GET /metrics (counters, queue depth, in-flight, and a
// GK-sketch latency histogram) make the shedding observable.
// ?stream=sse upgrades a request to server-sent events carrying
// queued/progress/result. cmd/rtload is the matching load generator:
// paced open-loop bursts over a scenario mix with exit-code
// assertions on the p99 SLO (-slo-p99), on observed shedding
// (-min-throttled), and with -unique to defeat the cache and load
// the simulators themselves. scripts/serve_smoke.sh (make
// serve-smoke, run by make ci) pins the whole contract end to end.
//
// The benchmark harness in bench_test.go regenerates every published
// artefact (go test -bench=. -benchmem); make bench-json distills the
// BENCH_engine.json/BENCH_stream.json artefacts, and
// scripts/bench_gate.sh gates CI against the committed baseline under
// bench/history (>15% events/sec loss fails).
package repro
