// Package repro is a from-scratch Go reproduction of "Fault Tolerance
// with Real-Time Java" (Damien Masson and Serge Midonnet, WPDRTS/IPPS
// 2006): admission control for fixed-priority periodic task systems
// (exact worst-case response-time analysis with arbitrary deadlines),
// temporal-fault detectors armed at each task's WCRT, and three fault
// treatments (immediate stop, equitable allowance, system allowance).
//
// The paper ran on the jRate RTSJ virtual machine over a TimeSys
// real-time kernel; this reproduction substitutes a deterministic
// discrete-event uniprocessor simulator with a nanosecond virtual
// clock (Go's garbage collector makes wall-clock hard real time
// unattainable, and virtual time makes every published figure exactly
// and deterministically reproducible). See DESIGN.md for the complete
// substitution table and system inventory, and EXPERIMENTS.md for
// paper-versus-measured results on every table and figure.
//
// Layout:
//
//   - internal/analysis — admission control (paper Section 2)
//   - internal/allowance — tolerance factors (Section 4.2/4.3)
//   - internal/detect — detectors and treatments (Sections 3–4)
//   - internal/engine — the simulated RT platform
//   - internal/rtsj — RTSJ-flavoured API (RealtimeThreadExtended…)
//   - internal/baselines — best-effort/RED/D-over comparators
//   - internal/experiments — one constructor per table and figure
//   - cmd/rtrun, cmd/rtchart, cmd/rtfeas, cmd/rtexp — tools
//   - examples/ — five runnable walkthroughs
//
// The benchmark harness in bench_test.go regenerates every published
// artefact: go test -bench=. -benchmem.
package repro
