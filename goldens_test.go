package repro

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/sim"
)

// The trace goldens pin the engine's observable behaviour byte for
// byte: every scenario under testdata/scenarios and every figure/table
// artefact of the paper is run and its Log.Encode output (or rendered
// text) diffed against testdata/goldens. The goldens were captured
// from the engine before the typed-event-loop rework, so any scheduler
// rearchitecture that changes even one event's order or timestamp
// fails here. Traces above goldenInlineLimit are stored as a SHA-256
// digest instead of full bytes to keep the repository small; equality
// pinned is the same.
var updateGoldens = flag.Bool("update-goldens", false,
	"rewrite testdata/goldens from the current engine")

const goldenInlineLimit = 256 << 10 // bytes of trace stored verbatim

// goldenDir is where the pinned artefacts live.
const goldenDir = "testdata/goldens"

// checkGolden compares got against the stored golden for name,
// rewriting it under -update-goldens. Large payloads are pinned by
// digest (name.sha256) instead of verbatim bytes (name).
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	plain := filepath.Join(goldenDir, name)
	hashed := plain + ".sha256"
	if *updateGoldens {
		if err := os.MkdirAll(goldenDir, 0o755); err != nil {
			t.Fatal(err)
		}
		if len(got) > goldenInlineLimit {
			sum := sha256.Sum256(got)
			os.Remove(plain)
			if err := os.WriteFile(hashed, []byte(hex.EncodeToString(sum[:])+"\n"), 0o644); err != nil {
				t.Fatal(err)
			}
		} else {
			os.Remove(hashed)
			if err := os.WriteFile(plain, got, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		return
	}
	if want, err := os.ReadFile(plain); err == nil {
		if !bytes.Equal(got, want) {
			t.Errorf("%s: output differs from golden (%d vs %d bytes); first divergence at byte %d\n"+
				"rerun with -update-goldens only if the change is intended",
				name, len(got), len(want), firstDiff(got, want))
		}
		return
	}
	want, err := os.ReadFile(hashed)
	if err != nil {
		t.Fatalf("%s: no golden found (run `go test -run TestTraceGoldens -update-goldens` once): %v", name, err)
	}
	sum := sha256.Sum256(got)
	if hex.EncodeToString(sum[:]) != strings.TrimSpace(string(want)) {
		t.Errorf("%s: trace digest differs from golden (%d bytes produced)", name, len(got))
	}
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// TestTraceGoldens runs every example scenario and diffs the full
// trace against the pre-refactor goldens. Streaming scenarios pin the
// spilled trace (identical bytes by construction, see trace.WriterSink).
func TestTraceGoldens(t *testing.T) {
	files, err := filepath.Glob("testdata/scenarios/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no scenarios found")
	}
	sort.Strings(files)
	for _, f := range files {
		f := f
		name := strings.TrimSuffix(filepath.Base(f), ".json")
		t.Run(name, func(t *testing.T) {
			s, err := sim.Load(f)
			if err != nil {
				t.Fatal(err)
			}
			sc := s.Scenario()
			var spill bytes.Buffer
			if sc.Streaming() {
				s.SpillTrace(&spill)
			}
			res, err := s.Run()
			if err != nil {
				t.Fatal(err)
			}
			var trace bytes.Buffer
			if sc.Streaming() {
				trace = spill
			} else if err := res.Log.Encode(&trace); err != nil {
				t.Fatal(err)
			}
			checkGolden(t, name+".trace", trace.Bytes())
		})
	}
}

// TestFigureGoldens pins the Figures 3–7 traces — the paper's charted
// artefacts — byte for byte.
func TestFigureGoldens(t *testing.T) {
	for _, fig := range []experiments.Figure{
		experiments.Figure3, experiments.Figure4, experiments.Figure5,
		experiments.Figure6, experiments.Figure7,
	} {
		fig := fig
		t.Run(fmt.Sprintf("fig%d", int(fig)), func(t *testing.T) {
			res, err := experiments.RunFigure(fig)
			if err != nil {
				t.Fatal(err)
			}
			var trace bytes.Buffer
			if err := res.Log.Encode(&trace); err != nil {
				t.Fatal(err)
			}
			checkGolden(t, fmt.Sprintf("fig%d.trace", int(fig)), trace.Bytes())
		})
	}
}

// TestTableGoldens pins the rendered Table 1–3 artefacts (analysis
// outputs, engine-independent — they guard the shared rendering).
func TestTableGoldens(t *testing.T) {
	render := map[string]func() (string, error){
		"table1": func() (string, error) {
			rows, err := experiments.Table1()
			if err != nil {
				return "", err
			}
			return experiments.RenderTable1(rows), nil
		},
		"table2": func() (string, error) {
			rows, err := experiments.Table2()
			if err != nil {
				return "", err
			}
			return experiments.RenderTable2(rows), nil
		},
		"table3": func() (string, error) {
			rows, err := experiments.Table3()
			if err != nil {
				return "", err
			}
			return experiments.RenderTable3(rows), nil
		},
	}
	names := make([]string, 0, len(render))
	for n := range render {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		n := n
		t.Run(n, func(t *testing.T) {
			out, err := render[n]()
			if err != nil {
				t.Fatal(err)
			}
			checkGolden(t, n+".txt", []byte(out))
		})
	}
}
